// Package layered implements the paper's layered-FEC architecture
// (Fig. 2a): a transparent Forward-Error-Correction layer inserted between
// the network and an UNMODIFIED reliable-multicast ARQ protocol.
//
// On the sending side the shim groups outgoing data-plane packets into
// transmission groups of k, appends h Reed-Solomon parities, and forwards
// everything. On the receiving side it delivers original packets upward
// immediately, keeps copies for decoding, and when any k of a group's n
// packets have arrived it reconstructs and delivers the missing originals —
// so the ARQ layer above simply observes a network with the reduced
// residual loss probability q(k,n,p) of Eq. (2). Control traffic
// (MulticastControl) bypasses the FEC layer entirely.
//
// The shim implements the same Env contract the protocol engines in
// internal/core consume, so layered FEC is literally core's N2 stacked on
// this package — the composition the paper evaluates in Section 3.1.
package layered

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"time"

	"rmfec/internal/core"
	"rmfec/internal/packet"
	"rmfec/internal/rse"
)

// Config parameterises the FEC layer.
type Config struct {
	Session   uint32 // FEC-layer session id (independent of the RM layer's)
	K         int    // group size
	H         int    // parities per group
	ShardSize int    // max upper-layer packet size this layer can carry
	// FlushTimeout emits the parities of a partially filled group after
	// this idle time, padding with virtual zero shards. Default 50 ms.
	FlushTimeout time.Duration
	// MaxGroups bounds receiver-side group memory (default 256); older
	// groups are evicted, their recovery left to the ARQ layer above.
	MaxGroups int
}

// Defaults fills unset optional fields.
func (c *Config) Defaults() {
	if c.FlushTimeout == 0 {
		c.FlushTimeout = 50 * time.Millisecond
	}
	if c.MaxGroups == 0 {
		c.MaxGroups = 256
	}
}

// Validate reports configuration errors.
func (c *Config) Validate() error {
	if c.K < 1 || c.H < 0 || c.K+c.H > 255 {
		return fmt.Errorf("layered: bad code (k=%d, h=%d)", c.K, c.H)
	}
	if c.ShardSize < 1 || c.ShardSize > 65000-2 {
		return fmt.Errorf("layered: ShardSize = %d", c.ShardSize)
	}
	if c.FlushTimeout <= 0 || c.MaxGroups < 1 {
		return fmt.Errorf("layered: bad timing/memory config %+v", *c)
	}
	return nil
}

// Stats counts the shim's activity.
type Stats struct {
	WrappedTx   int // upper data packets wrapped and sent
	ParityTx    int // parity packets emitted
	Flushes     int // partial groups flushed by timeout
	DeliveredRx int // original packets passed upward (direct)
	RecoveredRx int // original packets reconstructed from parities
	Undecodable int // groups evicted before becoming decodable
}

// Shim is one endpoint's FEC layer. It is driven by the same serial event
// discipline as the core engines.
type Shim struct {
	lower core.Env
	cfg   Config
	code  *rse.Code
	upper func(b []byte)

	// sender state
	outGroup    uint32
	outShards   [][]byte
	outFill     int
	flushCancel func()

	// receiver state
	groups map[uint32]*rxGroup
	order  []uint32 // insertion order for eviction

	stats Stats
}

type rxGroup struct {
	shards [][]byte
	have   int
	fill   int // real packets in the group (rest are virtual zeros)
	done   bool
}

// New creates a shim over the lower environment.
func New(lower core.Env, cfg Config) (*Shim, error) {
	cfg.Defaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	code, err := rse.New(cfg.K, cfg.H)
	if err != nil {
		return nil, err
	}
	return &Shim{
		lower:  lower,
		cfg:    cfg,
		code:   code,
		groups: make(map[uint32]*rxGroup),
	}, nil
}

// Stats returns a snapshot of the shim's counters.
func (s *Shim) Stats() Stats { return s.stats }

// SetUpper installs the upward delivery callback (the RM layer's
// HandlePacket).
func (s *Shim) SetUpper(fn func(b []byte)) { s.upper = fn }

// Now implements core.Env.
func (s *Shim) Now() time.Duration { return s.lower.Now() }

// After implements core.Env.
func (s *Shim) After(d time.Duration, fn func()) func() { return s.lower.After(d, fn) }

// Rand implements core.Env.
func (s *Shim) Rand() *rand.Rand { return s.lower.Rand() }

// MulticastControl passes control traffic through unprotected.
func (s *Shim) MulticastControl(b []byte) error { return s.lower.MulticastControl(b) }

// Multicast wraps an upper-layer data packet into the current FEC group
// and sends it. When the group fills, parities follow immediately.
func (s *Shim) Multicast(b []byte) error {
	if len(b) > s.cfg.ShardSize {
		return fmt.Errorf("layered: packet of %d bytes exceeds ShardSize %d", len(b), s.cfg.ShardSize)
	}
	if s.outShards == nil {
		s.outShards = make([][]byte, 0, s.cfg.K)
	}
	shard := make([]byte, s.cfg.ShardSize+2)
	binary.BigEndian.PutUint16(shard, uint16(len(b)))
	copy(shard[2:], b)
	idx := len(s.outShards)
	s.outShards = append(s.outShards, shard)
	s.outFill = len(s.outShards)

	wp := packet.Packet{
		Type:    packet.TypeData,
		Session: s.cfg.Session,
		Group:   s.outGroup,
		Seq:     uint16(idx),
		K:       uint16(s.cfg.K),
		// Count stays 0: only parity packets, emitted when the group is
		// closed, carry the authoritative fill.
		Payload: shard,
	}
	wire, err := wp.Encode()
	if err != nil {
		return err
	}
	if err := s.lower.Multicast(wire); err != nil {
		return err
	}
	s.stats.WrappedTx++

	if len(s.outShards) == s.cfg.K {
		return s.emitParities()
	}
	s.armFlush()
	return nil
}

func (s *Shim) armFlush() {
	if s.flushCancel != nil {
		s.flushCancel()
	}
	s.flushCancel = s.lower.After(s.cfg.FlushTimeout, func() {
		s.flushCancel = nil
		if len(s.outShards) > 0 {
			s.stats.Flushes++
			s.emitParities() //nolint:errcheck // best-effort datagrams
		}
	})
}

// emitParities pads the group to k with zero shards, sends the h parities
// and opens the next group.
func (s *Shim) emitParities() error {
	if s.flushCancel != nil {
		s.flushCancel()
		s.flushCancel = nil
	}
	fill := len(s.outShards)
	data := s.outShards
	for len(data) < s.cfg.K {
		data = append(data, make([]byte, s.cfg.ShardSize+2))
	}
	var firstErr error
	for j := 0; j < s.cfg.H; j++ {
		shard, err := s.code.EncodeParity(j, data, nil)
		if err != nil {
			return err
		}
		wp := packet.Packet{
			Type:    packet.TypeParity,
			Session: s.cfg.Session,
			Group:   s.outGroup,
			Seq:     uint16(s.cfg.K + j),
			K:       uint16(s.cfg.K),
			Count:   uint16(fill),
			Payload: shard,
		}
		wire, err := wp.Encode()
		if err != nil {
			return err
		}
		if err := s.lower.Multicast(wire); err != nil && firstErr == nil {
			firstErr = err
		}
		s.stats.ParityTx++
	}
	s.outGroup++
	s.outShards = nil
	s.outFill = 0
	return firstErr
}

// HandlePacket feeds a packet arriving from the network into the receive
// path. FEC-layer packets are consumed; anything else (the RM layer's
// control traffic) is passed upward untouched.
func (s *Shim) HandlePacket(wire []byte) {
	pkt, err := packet.Decode(wire)
	if err != nil {
		return
	}
	if pkt.Session != s.cfg.Session ||
		(pkt.Type != packet.TypeData && pkt.Type != packet.TypeParity) {
		s.deliver(wire)
		return
	}
	if int(pkt.K) != s.cfg.K || len(pkt.Payload) != s.cfg.ShardSize+2 {
		return
	}
	g := s.group(pkt.Group)
	if g == nil || g.done {
		if pkt.Type == packet.TypeData {
			s.unwrapUp(pkt.Payload, true) // still useful for the ARQ layer
		}
		return
	}
	idx := int(pkt.Seq)
	if idx >= len(g.shards) || g.shards[idx] != nil {
		if pkt.Type == packet.TypeData {
			s.unwrapUp(pkt.Payload, true)
		}
		return
	}
	if pkt.Type == packet.TypeParity {
		// A parity packet means the sender closed the group; its Count is
		// the authoritative number of real packets. The remaining data
		// slots are virtual zero shards and count as received.
		if fill := int(pkt.Count); fill > g.fill {
			g.fill = fill
		}
	}
	g.shards[idx] = pkt.Payload
	g.have++
	if pkt.Type == packet.TypeData {
		s.unwrapUp(pkt.Payload, true)
	}
	s.tryDecode(g)
}

// effectiveHave counts received shards plus the virtual zero padding that
// parity packets revealed.
func (s *Shim) effectiveHave(g *rxGroup) int {
	if g.fill == 0 {
		return g.have // group size unknown yet; no padding credit
	}
	virtual := s.cfg.K - g.fill
	return g.have + virtual
}

func (s *Shim) tryDecode(g *rxGroup) {
	if g.done || s.effectiveHave(g) < s.cfg.K {
		return
	}
	// Materialise the virtual zero shards.
	if g.fill > 0 {
		for i := g.fill; i < s.cfg.K; i++ {
			if g.shards[i] == nil {
				g.shards[i] = make([]byte, s.cfg.ShardSize+2)
			}
		}
	}
	missing := make([]bool, s.cfg.K)
	for i := 0; i < s.cfg.K; i++ {
		missing[i] = g.shards[i] == nil
	}
	if err := s.code.Reconstruct(g.shards); err != nil {
		return
	}
	g.done = true
	limit := s.cfg.K
	if g.fill > 0 {
		limit = g.fill
	}
	for i := 0; i < limit; i++ {
		if missing[i] {
			s.stats.RecoveredRx++
			s.unwrapUp(g.shards[i], false)
		}
	}
}

func (s *Shim) unwrapUp(shard []byte, direct bool) {
	n := int(binary.BigEndian.Uint16(shard))
	if n > len(shard)-2 {
		return // corrupt length prefix
	}
	if direct {
		s.stats.DeliveredRx++
	}
	s.deliver(shard[2 : 2+n])
}

func (s *Shim) deliver(b []byte) {
	if s.upper != nil {
		s.upper(b)
	}
}

// group returns (creating if needed) receive state for group idx, evicting
// the oldest group beyond the memory bound. Returns nil if idx was already
// evicted (ancient groups are not re-tracked).
func (s *Shim) group(idx uint32) *rxGroup {
	if g, ok := s.groups[idx]; ok {
		return g
	}
	if len(s.order) > 0 && idx < s.order[0] {
		return nil
	}
	g := &rxGroup{shards: make([][]byte, s.cfg.K+s.cfg.H)}
	s.groups[idx] = g
	s.order = append(s.order, idx)
	for len(s.order) > s.cfg.MaxGroups {
		old := s.order[0]
		s.order = s.order[1:]
		if og, ok := s.groups[old]; ok && !og.done {
			s.stats.Undecodable++
		}
		delete(s.groups, old)
	}
	return g
}
