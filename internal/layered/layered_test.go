package layered

import (
	"bytes"
	"math/rand"
	"testing"
	"time"

	"rmfec/internal/core"
	"rmfec/internal/loss"
	"rmfec/internal/packet"
	"rmfec/internal/simnet"
)

// stack is an N2 endpoint running over a layered-FEC shim on a simnet node.
type stack struct {
	shim *Shim
	sNP  *core.SenderN2
	rNP  *core.ReceiverN2
}

func fecConfig() Config {
	return Config{Session: 900, K: 7, H: 1, ShardSize: 200}
}

func rmConfig() core.Config {
	return core.Config{Session: 7, K: 1, ShardSize: 64}
}

func buildNet(t testing.TB, r int, seed int64, mkLoss func(*rand.Rand) loss.Process,
	fec Config) (sched *simnet.Scheduler, snd *stack, rcvs []*stack, delivered [][]byte) {
	t.Helper()
	sched = simnet.NewScheduler()
	sched.MaxEvents = 10_000_000
	rng := rand.New(rand.NewSource(seed))
	net := simnet.NewNetwork(sched, rng)

	mkStack := func(node *simnet.Node) *stack {
		sh, err := New(node, fec)
		if err != nil {
			t.Fatal(err)
		}
		node.SetHandler(sh.HandlePacket)
		return &stack{shim: sh}
	}

	sndNode := net.AddNode(simnet.NodeConfig{Delay: time.Millisecond})
	snd = mkStack(sndNode)
	s, err := core.NewSenderN2(snd.shim, rmConfig())
	if err != nil {
		t.Fatal(err)
	}
	snd.sNP = s
	snd.shim.SetUpper(s.HandlePacket)

	delivered = make([][]byte, r)
	for i := 0; i < r; i++ {
		var lp loss.Process
		if mkLoss != nil {
			lp = mkLoss(rng)
		}
		node := net.AddNode(simnet.NodeConfig{Delay: time.Millisecond, Loss: lp})
		st := mkStack(node)
		rc, err := core.NewReceiverN2(st.shim, rmConfig())
		if err != nil {
			t.Fatal(err)
		}
		idx := i
		rc.OnComplete = func(m []byte) { delivered[idx] = m }
		st.rNP = rc
		st.shim.SetUpper(rc.HandlePacket)
		rcvs = append(rcvs, st)
	}
	return sched, snd, rcvs, delivered
}

func testMessage(n int, seed int64) []byte {
	msg := make([]byte, n)
	rand.New(rand.NewSource(seed)).Read(msg)
	return msg
}

func TestLosslessPassThrough(t *testing.T) {
	sched, snd, rcvs, delivered := buildNet(t, 3, 1, nil, fecConfig())
	msg := testMessage(2000, 2)
	if err := snd.sNP.Send(msg); err != nil {
		t.Fatal(err)
	}
	sched.Run()
	for i, d := range delivered {
		if !bytes.Equal(d, msg) {
			t.Fatalf("receiver %d corrupted", i)
		}
	}
	if st := snd.shim.Stats(); st.ParityTx == 0 {
		t.Error("no parities emitted")
	}
	for _, rc := range rcvs {
		if rc.shim.Stats().RecoveredRx != 0 {
			t.Error("recovered packets without loss")
		}
	}
}

func TestFECRecoveryAvoidsARQ(t *testing.T) {
	// Engineered loss: drop the LAST data slot (index k-1) of every block
	// of n = k+h = 8. The parity that follows immediately repairs it
	// before the ARQ layer can even detect the gap, so the N2 layer above
	// must never NAK.
	fec := fecConfig()
	n := fec.K + fec.H
	mk := func(*rand.Rand) loss.Process { return &periodicLoss{period: n, phase: fec.K - 1} }
	sched, snd, rcvs, delivered := buildNet(t, 2, 3, mk, fec)
	msg := testMessage(4000, 4)
	if err := snd.sNP.Send(msg); err != nil {
		t.Fatal(err)
	}
	sched.Run()
	for i, d := range delivered {
		if !bytes.Equal(d, msg) {
			t.Fatalf("receiver %d corrupted", i)
		}
	}
	if naks := snd.sNP.Stats().NakRx; naks != 0 {
		t.Errorf("ARQ layer saw %d NAKs; FEC should have hidden the loss", naks)
	}
	for i, rc := range rcvs {
		if rec := rc.shim.Stats().RecoveredRx; rec == 0 {
			t.Errorf("receiver %d recovered nothing", i)
		}
	}
}

// periodicLoss drops arriving data packets whose index is congruent to
// phase modulo period.
type periodicLoss struct {
	period int
	phase  int
	count  int
}

func (p *periodicLoss) Lost(float64) bool {
	lost := p.count%p.period == p.phase
	p.count++
	return lost
}
func (p *periodicLoss) Reset() { p.count = 0 }

func TestRandomLossCompletes(t *testing.T) {
	mk := func(rng *rand.Rand) loss.Process { return loss.NewBernoulli(0.08, rng) }
	sched, snd, _, delivered := buildNet(t, 6, 5, mk, fecConfig())
	msg := testMessage(6000, 6)
	if err := snd.sNP.Send(msg); err != nil {
		t.Fatal(err)
	}
	sched.Run()
	for i, d := range delivered {
		if !bytes.Equal(d, msg) {
			t.Fatalf("receiver %d corrupted", i)
		}
	}
}

func TestLayeredReducesARQRetransmissions(t *testing.T) {
	// The paper's Section 3.1 claim, measured on the live stack: with
	// enough receivers, N2-over-FEC needs fewer ARQ retransmissions than
	// plain N2 under the same loss.
	const R, p = 12, 0.05
	msg := testMessage(10000, 7)

	mk := func(rng *rand.Rand) loss.Process { return loss.NewBernoulli(p, rng) }
	sched, snd, _, delivered := buildNet(t, R, 8, mk, fecConfig())
	if err := snd.sNP.Send(msg); err != nil {
		t.Fatal(err)
	}
	sched.Run()
	for i, d := range delivered {
		if !bytes.Equal(d, msg) {
			t.Fatalf("layered receiver %d corrupted", i)
		}
	}
	layeredRetx := snd.sNP.Stats().NakServed

	// Plain N2 on a raw network, same seed and loss.
	sched2 := simnet.NewScheduler()
	sched2.MaxEvents = 10_000_000
	rng2 := rand.New(rand.NewSource(8))
	net2 := simnet.NewNetwork(sched2, rng2)
	sndNode := net2.AddNode(simnet.NodeConfig{Delay: time.Millisecond})
	s2, err := core.NewSenderN2(sndNode, rmConfig())
	if err != nil {
		t.Fatal(err)
	}
	sndNode.SetHandler(s2.HandlePacket)
	got := make([][]byte, R)
	for i := 0; i < R; i++ {
		node := net2.AddNode(simnet.NodeConfig{Delay: time.Millisecond, Loss: loss.NewBernoulli(p, rng2)})
		rc, err := core.NewReceiverN2(node, rmConfig())
		if err != nil {
			t.Fatal(err)
		}
		idx := i
		rc.OnComplete = func(m []byte) { got[idx] = m }
		node.SetHandler(rc.HandlePacket)
	}
	if err := s2.Send(msg); err != nil {
		t.Fatal(err)
	}
	sched2.Run()
	for i, d := range got {
		if !bytes.Equal(d, msg) {
			t.Fatalf("plain receiver %d corrupted", i)
		}
	}
	plainRetx := s2.Stats().NakServed
	if layeredRetx >= plainRetx {
		t.Errorf("layered FEC should cut ARQ retransmissions: layered %d vs plain %d",
			layeredRetx, plainRetx)
	}
}

func TestPartialGroupFlush(t *testing.T) {
	// A message whose packet count is not a multiple of k leaves a partial
	// tail group; the flush timer must emit its parities, padded with
	// virtual zero shards, and the padding must still allow recovery.
	fec := fecConfig()
	mk := func(*rand.Rand) loss.Process { return &lastDataLoss{} }
	sched, snd, rcvs, delivered := buildNet(t, 1, 9, mk, fec)
	// 3 RM packets (64B shards) -> partial FEC group of 3+FIN wrappings.
	msg := testMessage(3*64, 10)
	if err := snd.sNP.Send(msg); err != nil {
		t.Fatal(err)
	}
	sched.Run()
	if !bytes.Equal(delivered[0], msg) {
		t.Fatal("partial-group transfer corrupted")
	}
	if snd.shim.Stats().Flushes == 0 {
		t.Error("no flush happened")
	}
	_ = rcvs
}

// lastDataLoss drops the 2nd arriving data-plane packet only.
type lastDataLoss struct{ count int }

func (p *lastDataLoss) Lost(float64) bool {
	p.count++
	return p.count == 2
}
func (p *lastDataLoss) Reset() { p.count = 0 }

func TestControlBypassesFEC(t *testing.T) {
	sched := simnet.NewScheduler()
	rng := rand.New(rand.NewSource(11))
	net := simnet.NewNetwork(sched, rng)
	a := net.AddNode(simnet.NodeConfig{Delay: time.Millisecond})
	b := net.AddNode(simnet.NodeConfig{Delay: time.Millisecond})
	shA, err := New(a, fecConfig())
	if err != nil {
		t.Fatal(err)
	}
	a.SetHandler(shA.HandlePacket)
	shB, err := New(b, fecConfig())
	if err != nil {
		t.Fatal(err)
	}
	b.SetHandler(shB.HandlePacket)

	var got [][]byte
	shB.SetUpper(func(p []byte) { got = append(got, append([]byte(nil), p...)) })

	ctl := packet.Packet{Type: packet.TypeNak, Session: 7, Group: 3, Count: 2}
	if err := shA.MulticastControl(ctl.MustEncode()); err != nil {
		t.Fatal(err)
	}
	sched.Run()
	if len(got) != 1 {
		t.Fatalf("control deliveries = %d", len(got))
	}
	if p, err := packet.Decode(got[0]); err != nil || p.Type != packet.TypeNak {
		t.Fatalf("control packet mangled: %v", err)
	}
	if shA.Stats().WrappedTx != 0 {
		t.Error("control packet was wrapped")
	}
}

func TestOversizePacketRejected(t *testing.T) {
	sched := simnet.NewScheduler()
	net := simnet.NewNetwork(sched, rand.New(rand.NewSource(12)))
	node := net.AddNode(simnet.NodeConfig{})
	sh, err := New(node, fecConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := sh.Multicast(make([]byte, 500)); err == nil {
		t.Error("oversize packet accepted")
	}
}

func TestConfigValidation(t *testing.T) {
	sched := simnet.NewScheduler()
	net := simnet.NewNetwork(sched, rand.New(rand.NewSource(13)))
	node := net.AddNode(simnet.NodeConfig{})
	for i, cfg := range []Config{
		{K: 0, H: 1, ShardSize: 100},
		{K: 200, H: 60, ShardSize: 100},
		{K: 7, H: -1, ShardSize: 100},
		{K: 7, H: 1, ShardSize: 0},
		{K: 7, H: 1, ShardSize: 100, MaxGroups: -1},
	} {
		if _, err := New(node, cfg); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}

func TestGroupEviction(t *testing.T) {
	sched := simnet.NewScheduler()
	net := simnet.NewNetwork(sched, rand.New(rand.NewSource(14)))
	node := net.AddNode(simnet.NodeConfig{})
	cfg := fecConfig()
	cfg.MaxGroups = 2
	sh, err := New(node, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Feed partial groups 0..4; only the last two should be tracked.
	for g := 0; g < 5; g++ {
		shard := make([]byte, cfg.ShardSize+2)
		wp := packet.Packet{
			Type: packet.TypeData, Session: cfg.Session,
			Group: uint32(g), Seq: 0, K: uint16(cfg.K), Count: uint16(cfg.K), Payload: shard,
		}
		sh.HandlePacket(wp.MustEncode())
	}
	if len(sh.groups) != 2 {
		t.Errorf("tracked groups = %d, want 2", len(sh.groups))
	}
	if sh.Stats().Undecodable != 3 {
		t.Errorf("undecodable = %d, want 3", sh.Stats().Undecodable)
	}
	// An ancient group must not be resurrected.
	old := packet.Packet{
		Type: packet.TypeData, Session: cfg.Session,
		Group: 0, Seq: 1, K: uint16(cfg.K), Count: uint16(cfg.K),
		Payload: make([]byte, cfg.ShardSize+2),
	}
	sh.HandlePacket(old.MustEncode())
	if len(sh.groups) != 2 {
		t.Error("evicted group resurrected")
	}
}
