package loss

import (
	"fmt"
	"math"
	"math/rand"
)

// Tree is a generalised shared-loss multicast topology: an arbitrary tree
// with the source at the root, receivers at the leaves, and an independent
// per-packet loss probability at every node. A loss anywhere on the path
// loses the packet for the whole subtree — the paper's Section-4.1 model
// with the full-binary-tree restriction lifted, so star topologies (pure
// independent loss), chains (fully shared loss), and measured multicast
// trees can all be expressed.
type Tree struct {
	parent []int     // parent[i] for node i; parent[0] = -1 (root/source)
	pnode  []float64 // per-node loss probability
	leaves []int     // node ids of the receivers, in Population order
	order  []int     // topological order (parents before children)
	lostN  []bool    // scratch: per-node loss of the current draw
	rng    *rand.Rand
}

// TreeNode describes one node when building a Tree.
type TreeNode struct {
	Parent int     // index of the parent node; -1 for the root
	PNode  float64 // per-packet loss probability at this node
}

// NewTree builds a shared-loss tree from an explicit node list. Node 0
// must be the root (Parent == -1); every other node's Parent must have a
// smaller index (parents before children). Nodes without children are the
// receivers, ordered by node index.
func NewTree(nodes []TreeNode, rng *rand.Rand) (*Tree, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("loss: empty tree")
	}
	if nodes[0].Parent != -1 {
		return nil, fmt.Errorf("loss: node 0 must be the root (Parent == -1)")
	}
	t := &Tree{
		parent: make([]int, len(nodes)),
		pnode:  make([]float64, len(nodes)),
		lostN:  make([]bool, len(nodes)),
		rng:    rng,
	}
	hasChild := make([]bool, len(nodes))
	for i, n := range nodes {
		if i > 0 {
			if n.Parent < 0 || n.Parent >= i {
				return nil, fmt.Errorf("loss: node %d has parent %d; parents must precede children", i, n.Parent)
			}
			hasChild[n.Parent] = true
		}
		if n.PNode < 0 || n.PNode > 1 || math.IsNaN(n.PNode) {
			return nil, fmt.Errorf("loss: node %d has p = %g", i, n.PNode)
		}
		t.parent[i] = n.Parent
		t.pnode[i] = n.PNode
		t.order = append(t.order, i)
	}
	for i := range nodes {
		if !hasChild[i] && i != 0 {
			t.leaves = append(t.leaves, i)
		}
	}
	if len(t.leaves) == 0 {
		// Degenerate single-node tree: the root is the only receiver.
		t.leaves = []int{0}
	}
	return t, nil
}

// NewUniformTree builds a balanced tree of the given branching degree and
// height with one loss probability for every node (height+1 nodes on each
// root-to-leaf path), giving each of the degree^height receivers the
// end-to-end loss probability p, like NewFBT but with arbitrary degree.
func NewUniformTree(degree, height int, p float64, rng *rand.Rand) (*Tree, error) {
	if degree < 1 || height < 0 || height > 20 {
		return nil, fmt.Errorf("loss: uniform tree degree %d height %d", degree, height)
	}
	if p < 0 || p >= 1 || math.IsNaN(p) {
		return nil, fmt.Errorf("loss: uniform tree p = %g", p)
	}
	pnode := 1 - math.Pow(1-p, 1/float64(height+1))
	nodes := []TreeNode{{Parent: -1, PNode: pnode}}
	levelStart := 0
	levelCount := 1
	for l := 0; l < height; l++ {
		nextStart := len(nodes)
		for parent := levelStart; parent < levelStart+levelCount; parent++ {
			for c := 0; c < degree; c++ {
				nodes = append(nodes, TreeNode{Parent: parent, PNode: pnode})
			}
		}
		levelStart = nextStart
		levelCount *= degree
	}
	return NewTree(nodes, rng)
}

// R implements Population.
func (t *Tree) R() int { return len(t.leaves) }

// Reset implements Population (memoryless).
func (t *Tree) Reset() {}

// Draw implements Population: sample per-node losses, propagate down the
// tree in topological order, and report the leaves.
func (t *Tree) Draw(_ float64, lost []bool) {
	if len(lost) != len(t.leaves) {
		panic(fmt.Sprintf("loss: Draw buffer %d != R %d", len(lost), len(t.leaves)))
	}
	for _, i := range t.order {
		l := t.pnode[i] > 0 && t.rng.Float64() < t.pnode[i]
		if !l && t.parent[i] >= 0 {
			l = t.lostN[t.parent[i]]
		}
		t.lostN[i] = l
	}
	for j, leaf := range t.leaves {
		lost[j] = t.lostN[leaf]
	}
}
