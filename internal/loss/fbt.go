package loss

import (
	"fmt"
	"math"
	"math/rand"
)

// FBT models the paper's shared-loss topology (Section 4.1): a full binary
// tree of height d with the source at the root and the R = 2^d receivers at
// the leaves. Every node of the tree — source, interior routers and leaves,
// d+1 of them on each root-to-leaf path — drops a given packet
// independently with probability PNode, and a drop anywhere on the path
// loses the packet for the whole subtree below. PNode is derived from the
// desired per-receiver loss probability p as
//
//	p = 1 - (1-PNode)^(d+1).
//
// There is no temporal correlation: every Draw is independent, so the dt
// argument is ignored.
type FBT struct {
	Depth int     // tree height d; R = 2^d receivers
	PNode float64 // per-node loss probability
	r     int
	nodes int // 2^(d+1) - 1
	rng   *rand.Rand
	// logq caches ln(1-PNode) for the geometric skip sampler.
	logq float64
	// DrawLost scratch, reused across draws.
	iv  []leafInterval
	idx []int
}

// leafInterval is a half-open run [lo, hi) of lost leaf indices.
type leafInterval struct{ lo, hi int }

// NewFBT returns a shared-loss tree of height depth whose leaves each see
// packet loss probability p.
func NewFBT(depth int, p float64, rng *rand.Rand) *FBT {
	if depth < 0 || depth > 30 {
		panic(fmt.Sprintf("loss: FBT depth = %d", depth))
	}
	if p < 0 || p >= 1 || math.IsNaN(p) {
		panic(fmt.Sprintf("loss: FBT p = %g", p))
	}
	pnode := 1 - math.Pow(1-p, 1/float64(depth+1))
	t := &FBT{
		Depth: depth,
		PNode: pnode,
		r:     1 << depth,
		nodes: 1<<(depth+1) - 1,
		rng:   rng,
	}
	if pnode > 0 {
		t.logq = math.Log1p(-pnode)
	}
	return t
}

// R implements Population.
func (t *FBT) R() int { return t.r }

// Reset implements Population (the tree is memoryless).
func (t *FBT) Reset() {}

// Draw implements Population: one multicast transmission through the tree.
// Failed nodes are enumerated with geometric skip-sampling (expected cost
// O(nodes*PNode) instead of one random number per node) and each failure
// marks the leaf interval under that node.
func (t *FBT) Draw(_ float64, lost []bool) {
	if len(lost) != t.r {
		panic(fmt.Sprintf("loss: Draw buffer %d != R %d", len(lost), t.r))
	}
	for i := range lost {
		lost[i] = false
	}
	if t.PNode == 0 {
		return
	}
	for idx := t.nextFailure(-1); idx < t.nodes; idx = t.nextFailure(idx) {
		lo, hi := t.leafSpan(idx)
		for i := lo; i < hi; i++ {
			lost[i] = true
		}
	}
}

// DrawLost implements SparsePopulation. It consumes the RNG exactly like
// Draw (the same geometric enumeration of failed nodes), so a dense and a
// sparse draw from equal seeds lose the same receivers; only the output
// representation differs. Overlapping subtree intervals are merged before
// the leaf indices are emitted in ascending order.
func (t *FBT) DrawLost(_ float64) []int {
	t.idx = t.idx[:0]
	if t.PNode == 0 {
		return t.idx
	}
	t.iv = t.iv[:0]
	for idx := t.nextFailure(-1); idx < t.nodes; idx = t.nextFailure(idx) {
		lo, hi := t.leafSpan(idx)
		t.iv = append(t.iv, leafInterval{lo, hi})
	}
	// Failed nodes arrive in heap order, not leaf order: insertion-sort the
	// (few) intervals by lo, then emit with overlap merging.
	for i := 1; i < len(t.iv); i++ {
		v := t.iv[i]
		j := i - 1
		for j >= 0 && t.iv[j].lo > v.lo {
			t.iv[j+1] = t.iv[j]
			j--
		}
		t.iv[j+1] = v
	}
	next := 0 // first leaf not yet emitted
	for _, v := range t.iv {
		lo := v.lo
		if lo < next {
			lo = next
		}
		for i := lo; i < v.hi; i++ {
			t.idx = append(t.idx, i)
		}
		if v.hi > next {
			next = v.hi
		}
	}
	return t.idx
}

// nextFailure returns the smallest failed node index > prev, or t.nodes if
// none: a geometric jump with success probability PNode.
func (t *FBT) nextFailure(prev int) int {
	// Geometric(PNode) number of non-failures before the next failure.
	u := t.rng.Float64()
	for u == 0 {
		u = t.rng.Float64()
	}
	skip := int(math.Log(u) / t.logq) // floor; >= 0
	next := prev + 1 + skip
	if next < 0 || next > t.nodes { // overflow guard
		return t.nodes
	}
	return next
}

// leafSpan returns the half-open leaf range [lo, hi) under node idx (heap
// order, root 0). Level l = floor(log2(idx+1)); the subtree of a level-l
// node covers 2^(Depth-l) consecutive leaves.
func (t *FBT) leafSpan(idx int) (lo, hi int) {
	l := 0
	for (1<<(l+1))-1 <= idx {
		l++
	}
	pos := idx - ((1 << l) - 1)
	width := 1 << (t.Depth - l)
	return pos * width, (pos + 1) * width
}
