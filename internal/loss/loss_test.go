package loss

import (
	"math"
	"math/rand"
	"testing"
)

func TestBernoulliRate(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	b := NewBernoulli(0.1, rng)
	const n = 200000
	lost := 0
	for i := 0; i < n; i++ {
		if b.Lost(0.04) {
			lost++
		}
	}
	got := float64(lost) / n
	if math.Abs(got-0.1) > 0.005 {
		t.Errorf("Bernoulli loss rate = %g, want 0.1", got)
	}
}

func TestBernoulliValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("p=1.5 accepted")
		}
	}()
	NewBernoulli(1.5, rand.New(rand.NewSource(1)))
}

func TestMarkovParameterisation(t *testing.T) {
	// Paper's burst example: p=0.01, meanBurst=2, 25 pkt/s.
	m := NewMarkov(0.01, 2, 25, rand.New(rand.NewSource(2)))
	wantL1 := -25 * math.Log(0.5)
	if math.Abs(m.Lambda1-wantL1) > 1e-9 {
		t.Errorf("Lambda1 = %g, want %g", m.Lambda1, wantL1)
	}
	wantL0 := wantL1 * 0.01 / 0.99
	if math.Abs(m.Lambda0-wantL0) > 1e-9 {
		t.Errorf("Lambda0 = %g, want %g", m.Lambda0, wantL0)
	}
	// Stationarity: pi1 = Lambda0/(Lambda0+Lambda1) = p.
	pi1 := m.Lambda0 / (m.Lambda0 + m.Lambda1)
	if math.Abs(pi1-0.01) > 1e-12 {
		t.Errorf("pi1 = %g, want 0.01", pi1)
	}
}

func TestMarkovTransitionProbabilities(t *testing.T) {
	// The closed-form transition probabilities must satisfy the
	// Chapman-Kolmogorov equation: P(s+t) = P(s)P(t) for the 2x2 chain.
	m := NewMarkov(0.05, 3, 25, rand.New(rand.NewSource(3)))
	for _, st := range [][2]float64{{0.01, 0.02}, {0.1, 0.3}, {1, 2}} {
		s, u := st[0], st[1]
		p01 := func(t float64) float64 { return m.P01(t) }
		p11 := func(t float64) float64 { return m.P11(t) }
		p00 := func(t float64) float64 { return 1 - p01(t) }
		p10 := func(t float64) float64 { return 1 - p11(t) }
		// 0 -> 1 over s+u.
		want := p00(s)*p01(u) + p01(s)*p11(u)
		if math.Abs(p01(s+u)-want) > 1e-12 {
			t.Errorf("CK failed for p01(%g+%g): %g vs %g", s, u, p01(s+u), want)
		}
		// 1 -> 1 over s+u.
		want = p10(s)*p01(u) + p11(s)*p11(u)
		if math.Abs(p11(s+u)-want) > 1e-12 {
			t.Errorf("CK failed for p11(%g+%g): %g vs %g", s, u, p11(s+u), want)
		}
	}
	// Limits: dt -> 0 keeps the state; dt -> inf forgets it.
	if m.P11(1e-12) < 0.999999 {
		t.Error("P11(0+) should be ~1")
	}
	if math.Abs(m.P11(1e6)-0.05) > 1e-9 || math.Abs(m.P01(1e6)-0.05) > 1e-9 {
		t.Error("P(t->inf) should converge to pi1")
	}
}

func TestMarkovLongRunLossAndBurstLength(t *testing.T) {
	const (
		p     = 0.01
		burst = 2.0
		rate  = 25.0
		n     = 2_000_000
	)
	m := NewMarkov(p, burst, rate, rand.New(rand.NewSource(4)))
	dt := 1 / rate
	lost := 0
	bursts, burstsTotal := 0, 0
	run := 0
	for i := 0; i < n; i++ {
		if m.Lost(dt) {
			lost++
			run++
		} else if run > 0 {
			bursts++
			burstsTotal += run
			run = 0
		}
	}
	lossRate := float64(lost) / n
	if math.Abs(lossRate-p) > 0.0015 {
		t.Errorf("long-run loss rate = %g, want %g", lossRate, p)
	}
	meanBurst := float64(burstsTotal) / float64(bursts)
	if math.Abs(meanBurst-burst) > 0.1 {
		t.Errorf("mean burst length = %g, want %g", meanBurst, burst)
	}
}

func TestMarkovValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for name, f := range map[string]func(){
		"p=0":     func() { NewMarkov(0, 2, 25, rng) },
		"p=1":     func() { NewMarkov(1, 2, 25, rng) },
		"burst=1": func() { NewMarkov(0.1, 1, 25, rng) },
		"rate=0":  func() { NewMarkov(0.1, 2, 0, rng) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s accepted", name)
				}
			}()
			f()
		}()
	}
}

func TestIndependentPopulation(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	pop := NewIndependentBernoulli(50, 0.2, rng)
	if pop.R() != 50 {
		t.Fatalf("R = %d", pop.R())
	}
	lost := make([]bool, 50)
	count := 0
	const draws = 20000
	for i := 0; i < draws; i++ {
		pop.Draw(0.04, lost)
		for _, l := range lost {
			if l {
				count++
			}
		}
	}
	got := float64(count) / float64(draws*50)
	if math.Abs(got-0.2) > 0.01 {
		t.Errorf("population loss rate = %g, want 0.2", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("short buffer accepted")
		}
	}()
	pop.Draw(0.04, make([]bool, 49))
}

func TestFBTLeafLossProbability(t *testing.T) {
	for _, depth := range []int{0, 1, 3, 6} {
		tree := NewFBT(depth, 0.05, rand.New(rand.NewSource(7)))
		lost := make([]bool, tree.R())
		count, total := 0, 0
		const draws = 60000
		for i := 0; i < draws; i++ {
			tree.Draw(0, lost)
			for _, l := range lost {
				if l {
					count++
				}
				total++
			}
		}
		got := float64(count) / float64(total)
		if math.Abs(got-0.05) > 0.004 {
			t.Errorf("depth %d: per-leaf loss = %g, want 0.05", depth, got)
		}
	}
}

func TestFBTSharedness(t *testing.T) {
	// Sibling leaves share d of their d+1 path nodes, so their losses must
	// be strongly positively correlated; under independence the joint loss
	// probability would be p^2.
	const depth, p = 6, 0.05
	tree := NewFBT(depth, p, rand.New(rand.NewSource(8)))
	lost := make([]bool, tree.R())
	both, single := 0, 0
	const draws = 200000
	for i := 0; i < draws; i++ {
		tree.Draw(0, lost)
		if lost[0] {
			single++
			if lost[1] {
				both++
			}
		}
	}
	pBothGivenFirst := float64(both) / float64(single)
	if pBothGivenFirst < 5*p {
		t.Errorf("P(leaf1 lost | leaf0 lost) = %g: losses look independent, want strong sharing", pBothGivenFirst)
	}
}

func TestFBTMatchesNaiveImplementation(t *testing.T) {
	// Cross-check the skip-sampler against a naive per-node Bernoulli tree
	// walk by comparing marginal statistics on a small tree.
	const depth, p = 3, 0.3
	tree := NewFBT(depth, p, rand.New(rand.NewSource(9)))
	pnode := tree.PNode
	want := 1 - math.Pow(1-pnode, float64(depth+1))
	if math.Abs(want-p) > 1e-12 {
		t.Fatalf("PNode derivation wrong: round trip %g != %g", want, p)
	}

	naive := func(rng *rand.Rand, lost []bool) {
		fail := make([]bool, 1<<(depth+1)-1)
		for i := range fail {
			fail[i] = rng.Float64() < pnode
		}
		for leaf := 0; leaf < 1<<depth; leaf++ {
			idx := (1 << depth) - 1 + leaf
			l := false
			for {
				if fail[idx] {
					l = true
					break
				}
				if idx == 0 {
					break
				}
				idx = (idx - 1) / 2
			}
			lost[leaf] = l
		}
	}

	rng := rand.New(rand.NewSource(10))
	lost := make([]bool, 1<<depth)
	const draws = 120000
	countFast := make([]int, len(lost))
	pairFast := 0
	for i := 0; i < draws; i++ {
		tree.Draw(0, lost)
		for j, l := range lost {
			if l {
				countFast[j]++
			}
		}
		if lost[0] && lost[7] {
			pairFast++
		}
	}
	countNaive := make([]int, len(lost))
	pairNaive := 0
	for i := 0; i < draws; i++ {
		naive(rng, lost)
		for j, l := range lost {
			if l {
				countNaive[j]++
			}
		}
		if lost[0] && lost[7] {
			pairNaive++
		}
	}
	for j := range countFast {
		f := float64(countFast[j]) / draws
		n := float64(countNaive[j]) / draws
		if math.Abs(f-n) > 0.01 {
			t.Errorf("leaf %d: fast %g vs naive %g", j, f, n)
		}
	}
	if math.Abs(float64(pairFast-pairNaive))/draws > 0.01 {
		t.Errorf("joint loss of far leaves: fast %d vs naive %d", pairFast, pairNaive)
	}
}

func TestFBTZeroLoss(t *testing.T) {
	tree := NewFBT(4, 0, rand.New(rand.NewSource(11)))
	lost := make([]bool, tree.R())
	for i := range lost {
		lost[i] = true
	}
	tree.Draw(0, lost)
	for i, l := range lost {
		if l {
			t.Fatalf("leaf %d lost with p=0", i)
		}
	}
}

func TestFBTValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for name, f := range map[string]func(){
		"depth<0": func() { NewFBT(-1, 0.1, rng) },
		"p=1":     func() { NewFBT(3, 1, rng) },
		"buffer":  func() { NewFBT(3, 0.1, rng).Draw(0, make([]bool, 3)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s accepted", name)
				}
			}()
			f()
		}()
	}
}

func TestDeterminismUnderSeed(t *testing.T) {
	run := func() []bool {
		rng := rand.New(rand.NewSource(99))
		tree := NewFBT(5, 0.1, rng)
		lost := make([]bool, tree.R())
		out := make([]bool, 0, 10*tree.R())
		for i := 0; i < 10; i++ {
			tree.Draw(0, lost)
			out = append(out, lost...)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("FBT draws not deterministic under a fixed seed")
		}
	}
}
