package loss

import (
	"math"
	"math/rand"
	"testing"
)

// TestBernoulliSparseMatchesDense pins the geometric-skip kernel against
// the dense per-receiver Bernoulli population on fixed seeds: the per-draw
// loss counts must agree with the Binomial(R, p) mean and variance, and
// losses must hit every receiver index uniformly.
func TestBernoulliSparseMatchesDense(t *testing.T) {
	const r, p, draws = 1000, 0.05, 8000
	sparse := NewBernoulliPopulation(r, p, rand.New(rand.NewSource(21)))
	dense := NewIndependentBernoulli(r, p, rand.New(rand.NewSource(22)))

	countStats := func(draw func() int) (mean, variance float64) {
		var sum, ss float64
		for i := 0; i < draws; i++ {
			c := float64(draw())
			sum += c
			ss += c * c
		}
		mean = sum / draws
		return mean, ss/draws - mean*mean
	}

	perIdx := make([]int, r)
	sparseMean, sparseVar := countStats(func() int {
		lost := sparse.DrawLost(0.04)
		for _, j := range lost {
			if j < 0 || j >= r {
				t.Fatalf("lost index %d out of range", j)
			}
			perIdx[j]++
		}
		for i := 1; i < len(lost); i++ {
			if lost[i] <= lost[i-1] {
				t.Fatalf("lost indices not strictly ascending: %v", lost)
			}
		}
		return len(lost)
	})
	buf := make([]bool, r)
	denseMean, denseVar := countStats(func() int {
		dense.Draw(0.04, buf)
		n := 0
		for _, l := range buf {
			if l {
				n++
			}
		}
		return n
	})

	wantMean := float64(r) * p
	wantVar := float64(r) * p * (1 - p)
	// 4-sigma tolerance on the mean of `draws` Binomial counts.
	tol := 4 * math.Sqrt(wantVar/draws)
	for name, got := range map[string]float64{"sparse": sparseMean, "dense": denseMean} {
		if math.Abs(got-wantMean) > tol {
			t.Errorf("%s per-draw mean = %g, want %g +- %g", name, got, wantMean, tol)
		}
	}
	for name, got := range map[string]float64{"sparse": sparseVar, "dense": denseVar} {
		if math.Abs(got-wantVar) > 0.1*wantVar {
			t.Errorf("%s per-draw variance = %g, want %g +- 10%%", name, got, wantVar)
		}
	}
	// Spatial uniformity: a chi-square statistic over receiver indices
	// should stay near its expectation (r-1 degrees of freedom).
	expected := sparseMean * draws / r
	chi2 := 0.0
	for _, c := range perIdx {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	// chi2 ~ N(r-1, 2(r-1)) for large r; allow 5 sigma.
	if sigma := math.Sqrt(2 * float64(r-1)); math.Abs(chi2-float64(r-1)) > 5*sigma {
		t.Errorf("sparse per-index chi-square = %g, want %d +- %g", chi2, r-1, 5*sigma)
	}
}

// TestBernoulliDrawLostAmong checks the subset kernel: restricted to a
// fixed subset, per-draw loss counts must be Binomial(|among|, p), results
// must stay ascending members of the subset, and receivers outside the
// subset must never appear.
func TestBernoulliDrawLostAmong(t *testing.T) {
	const r, p, draws = 10000, 0.05, 6000
	bp := NewBernoulliPopulation(r, p, rand.New(rand.NewSource(41)))
	among := make([]int, 0, r/3)
	for j := 1; j < r; j += 3 { // every third receiver
		among = append(among, j)
	}
	member := make(map[int]bool, len(among))
	for _, j := range among {
		member[j] = true
	}

	var sum, ss float64
	for i := 0; i < draws; i++ {
		lost := bp.DrawLostAmong(0.04, among)
		for li, j := range lost {
			if !member[j] {
				t.Fatalf("draw %d: lost %d outside among", i, j)
			}
			if li > 0 && j <= lost[li-1] {
				t.Fatalf("draw %d: not strictly ascending: %v", i, lost)
			}
		}
		c := float64(len(lost))
		sum += c
		ss += c * c
	}
	mean := sum / draws
	variance := ss/draws - mean*mean
	a := float64(len(among))
	wantMean, wantVar := a*p, a*p*(1-p)
	if tol := 4 * math.Sqrt(wantVar/draws); math.Abs(mean-wantMean) > tol {
		t.Errorf("subset per-draw mean = %g, want %g +- %g", mean, wantMean, tol)
	}
	if math.Abs(variance-wantVar) > 0.1*wantVar {
		t.Errorf("subset per-draw variance = %g, want %g +- 10%%", variance, wantVar)
	}

	// Degenerate subsets.
	if lost := bp.DrawLostAmong(0.04, nil); len(lost) != 0 {
		t.Errorf("empty among lost %v", lost)
	}
	always := NewBernoulliPopulation(r, 1, rand.New(rand.NewSource(42)))
	if lost := always.DrawLostAmong(0.04, among[:7]); len(lost) != 7 {
		t.Errorf("p=1 subset lost %d, want 7", len(lost))
	}
}

func TestBernoulliPopulationEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	never := NewBernoulliPopulation(50, 0, rng)
	if lost := never.DrawLost(0.04); len(lost) != 0 {
		t.Errorf("p=0 lost %v", lost)
	}
	always := NewBernoulliPopulation(50, 1, rng)
	if lost := always.DrawLost(0.04); len(lost) != 50 {
		t.Errorf("p=1 lost %d receivers, want 50", len(lost))
	}
	buf := make([]bool, 50)
	always.Draw(0.04, buf)
	for j, l := range buf {
		if !l {
			t.Fatalf("p=1 Draw missed receiver %d", j)
		}
	}
	for name, f := range map[string]func(){
		"r=0":   func() { NewBernoulliPopulation(0, 0.1, rng) },
		"p=2":   func() { NewBernoulliPopulation(5, 2, rng) },
		"p=NaN": func() { NewBernoulliPopulation(5, math.NaN(), rng) },
		"buf":   func() { never.Draw(0.04, make([]bool, 3)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			f()
		}()
	}
}

// TestMarkovSparseMatchesDense pins the state-bucket Markov kernel against
// the dense per-receiver chains: per-draw loss counts must match the
// stationary mean, and the fraction of losses that repeat on the next draw
// must match P11 — the burst structure the sparse kernel must preserve.
func TestMarkovSparseMatchesDense(t *testing.T) {
	const (
		r, p      = 2000, 0.01
		meanBurst = 2.0
		pktRate   = 25.0
		dt        = 0.040
		draws     = 4000
	)
	sparse := NewMarkovPopulation(r, p, meanBurst, pktRate, rand.New(rand.NewSource(51)))
	dense := NewIndependentMarkov(r, p, meanBurst, pktRate, rand.New(rand.NewSource(52)))
	p11 := sparse.chain.P11(dt)

	type stats struct {
		mean, repeat float64
	}
	measure := func(draw func() []int) stats {
		var lossSum, repeats, prevLosses float64
		prev := make(map[int]bool)
		for i := 0; i < draws; i++ {
			lost := draw()
			for li, j := range lost {
				if li > 0 && j <= lost[li-1] {
					t.Fatalf("draw %d not strictly ascending: %v", i, lost)
				}
				if prev[j] {
					repeats++
				}
			}
			lossSum += float64(len(lost))
			prevLosses += float64(len(prev))
			for j := range prev {
				delete(prev, j)
			}
			for _, j := range lost {
				prev[j] = true
			}
		}
		return stats{mean: lossSum / draws, repeat: repeats / prevLosses}
	}

	buf := make([]bool, r)
	sp := measure(func() []int { return sparse.DrawLost(dt) })
	de := measure(func() []int {
		dense.Draw(dt, buf)
		idx := make([]int, 0, 64)
		for j, l := range buf {
			if l {
				idx = append(idx, j)
			}
		}
		return idx
	})

	wantMean := float64(r) * p
	tol := 4 * math.Sqrt(wantMean/draws) * 2 // bursts inflate count variance
	for name, got := range map[string]stats{"sparse": sp, "dense": de} {
		if math.Abs(got.mean-wantMean) > tol {
			t.Errorf("%s per-draw loss mean = %g, want %g +- %g", name, got.mean, wantMean, tol)
		}
		// ~draws*r*p repeat trials: generous 5-sigma band around P11.
		rtol := 5 * math.Sqrt(p11*(1-p11)/(draws*wantMean))
		if math.Abs(got.repeat-p11) > rtol {
			t.Errorf("%s burst continuation = %g, want P11 = %g +- %g", name, got.repeat, p11, rtol)
		}
	}
}

// TestFBTSparseDenseIdentical exploits that FBT's DrawLost consumes the
// RNG exactly like Draw: equal seeds must lose exactly the same receivers.
func TestFBTSparseDenseIdentical(t *testing.T) {
	for _, tc := range []struct {
		depth int
		p     float64
	}{
		{0, 0.1}, {3, 0.05}, {8, 0.01}, {8, 0.4}, {12, 0.01},
	} {
		a := NewFBT(tc.depth, tc.p, rand.New(rand.NewSource(31)))
		b := NewFBT(tc.depth, tc.p, rand.New(rand.NewSource(31)))
		r := a.R()
		buf := make([]bool, r)
		for draw := 0; draw < 200; draw++ {
			a.Draw(0.04, buf)
			lost := b.DrawLost(0.04)
			li := 0
			for j := 0; j < r; j++ {
				sparse := li < len(lost) && lost[li] == j
				if sparse {
					li++
				}
				if buf[j] != sparse {
					t.Fatalf("depth=%d p=%g draw %d: receiver %d dense=%v sparse=%v",
						tc.depth, tc.p, draw, j, buf[j], sparse)
				}
			}
			if li != len(lost) {
				t.Fatalf("depth=%d p=%g draw %d: %d unmatched sparse indices %v",
					tc.depth, tc.p, draw, len(lost)-li, lost[li:])
			}
		}
	}
}
