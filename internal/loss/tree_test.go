package loss

import (
	"math"
	"math/rand"
	"testing"
)

func TestTreeValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cases := map[string][]TreeNode{
		"empty":          {},
		"root-parent":    {{Parent: 0, PNode: 0.1}},
		"forward-parent": {{Parent: -1, PNode: 0.1}, {Parent: 2, PNode: 0.1}, {Parent: 0, PNode: 0.1}},
		"bad-p":          {{Parent: -1, PNode: 1.5}},
	}
	for name, nodes := range cases {
		if _, err := NewTree(nodes, rng); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
	if _, err := NewUniformTree(0, 3, 0.1, rng); err == nil {
		t.Error("degree 0 accepted")
	}
	if _, err := NewUniformTree(2, 3, 1.0, rng); err == nil {
		t.Error("p = 1 accepted")
	}
}

func TestUniformTreeMatchesFBT(t *testing.T) {
	// A degree-2 uniform tree is exactly the paper's FBT: same receiver
	// count, same per-leaf marginal, statistically identical sharing.
	const depth, p = 5, 0.05
	rng := rand.New(rand.NewSource(2))
	ut, err := NewUniformTree(2, depth, p, rng)
	if err != nil {
		t.Fatal(err)
	}
	fbt := NewFBT(depth, p, rng)
	if ut.R() != fbt.R() {
		t.Fatalf("R: uniform %d vs FBT %d", ut.R(), fbt.R())
	}
	count := func(pop Population) (marginal, both float64) {
		lost := make([]bool, pop.R())
		const draws = 120000
		var m, b int
		for i := 0; i < draws; i++ {
			pop.Draw(0, lost)
			if lost[0] {
				m++
				if lost[1] {
					b++
				}
			}
		}
		return float64(m) / draws, float64(b) / draws
	}
	mU, bU := count(ut)
	mF, bF := count(fbt)
	if math.Abs(mU-p) > 0.004 || math.Abs(mF-p) > 0.004 {
		t.Errorf("marginals: uniform %g, FBT %g, want %g", mU, mF, p)
	}
	if math.Abs(bU-bF) > 0.004 {
		t.Errorf("sibling joint loss: uniform %g vs FBT %g", bU, bF)
	}
}

func TestStarTreeIsIndependent(t *testing.T) {
	// A root with R direct leaf children and loss only at the leaves is
	// exactly independent loss.
	const r, p = 3, 0.2
	nodes := []TreeNode{{Parent: -1, PNode: 0}}
	for i := 0; i < r; i++ {
		nodes = append(nodes, TreeNode{Parent: 0, PNode: p})
	}
	tree, err := NewTree(nodes, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	if tree.R() != r {
		t.Fatalf("R = %d", tree.R())
	}
	lost := make([]bool, r)
	var m0, joint int
	const draws = 200000
	for i := 0; i < draws; i++ {
		tree.Draw(0, lost)
		if lost[0] {
			m0++
			if lost[1] {
				joint++
			}
		}
	}
	marginal := float64(m0) / draws
	if math.Abs(marginal-p) > 0.005 {
		t.Errorf("marginal = %g", marginal)
	}
	// Independence: P(1 lost | 0 lost) ~= p.
	cond := float64(joint) / float64(m0)
	if math.Abs(cond-p) > 0.02 {
		t.Errorf("P(lost1|lost0) = %g, want %g (independent)", cond, p)
	}
}

func TestChainTreeIsFullyShared(t *testing.T) {
	// A chain root -> relay -> single leaf: the one receiver's loss equals
	// 1-(1-p)^3 and, with a fan-out of two leaves under the same relay
	// with p=0 at the leaves, both leaves always lose together.
	nodes := []TreeNode{
		{Parent: -1, PNode: 0.1}, // source
		{Parent: 0, PNode: 0.1},  // relay
		{Parent: 1, PNode: 0},    // leaf A
		{Parent: 1, PNode: 0},    // leaf B
	}
	tree, err := NewTree(nodes, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	lost := make([]bool, 2)
	const draws = 100000
	var lossCount, disagree int
	for i := 0; i < draws; i++ {
		tree.Draw(0, lost)
		if lost[0] != lost[1] {
			disagree++
		}
		if lost[0] {
			lossCount++
		}
	}
	if disagree != 0 {
		t.Errorf("leaves under one lossy path disagreed %d times", disagree)
	}
	want := 1 - math.Pow(0.9, 2)
	if got := float64(lossCount) / draws; math.Abs(got-want) > 0.005 {
		t.Errorf("shared loss rate %g, want %g", got, want)
	}
}

func TestSingleNodeTree(t *testing.T) {
	tree, err := NewTree([]TreeNode{{Parent: -1, PNode: 0.3}}, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	if tree.R() != 1 {
		t.Fatalf("R = %d", tree.R())
	}
	lost := make([]bool, 1)
	var n int
	const draws = 100000
	for i := 0; i < draws; i++ {
		tree.Draw(0, lost)
		if lost[0] {
			n++
		}
	}
	if got := float64(n) / draws; math.Abs(got-0.3) > 0.006 {
		t.Errorf("loss rate %g", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("short buffer accepted")
		}
	}()
	tree.Draw(0, nil)
}
