// Package loss implements the packet-loss processes of the paper's
// evaluation: spatially and temporally independent Bernoulli loss
// (Section 3), two-state continuous-time Markov ("burst") loss fitted to
// Bolot's Internet measurements (Section 4.2), and full-binary-tree shared
// loss where one faulty node affects its whole subtree (Section 4.1).
// All processes are deterministic functions of their seed, which keeps the
// Monte-Carlo figures reproducible.
package loss

import (
	"fmt"
	"math"
	"math/rand"
)

// Process is a temporal loss process observed by a single receiver. A
// multicast packet sent dt seconds after the previous one is lost with a
// probability that may depend on the process state (burst loss) or not
// (Bernoulli).
type Process interface {
	// Lost advances the process clock by dt seconds and reports whether a
	// packet sent at the new instant is lost.
	Lost(dt float64) bool
	// Reset re-draws the initial (stationary) state.
	Reset()
}

// Bernoulli is temporally independent loss with probability P.
type Bernoulli struct {
	P   float64
	rng *rand.Rand
}

// NewBernoulli returns an independent loss process with probability p.
func NewBernoulli(p float64, rng *rand.Rand) *Bernoulli {
	if p < 0 || p > 1 || math.IsNaN(p) {
		panic(fmt.Sprintf("loss: Bernoulli p = %g", p))
	}
	return &Bernoulli{P: p, rng: rng}
}

// Lost implements Process; dt is irrelevant for memoryless loss.
func (b *Bernoulli) Lost(float64) bool { return b.rng.Float64() < b.P }

// Reset implements Process (no state).
func (b *Bernoulli) Reset() {}

// Markov is the paper's two-state continuous-time Markov chain: state 0 =
// no loss, state 1 = loss. A packet transmitted while the chain is in
// state 1 is lost. The chain leaves state 0 at rate Lambda0 and state 1 at
// rate Lambda1, giving stationary loss probability
// pi1 = Lambda0/(Lambda0+Lambda1).
type Markov struct {
	Lambda0, Lambda1 float64
	rate             float64 // Lambda0 + Lambda1
	pi1              float64
	state            int
	rng              *rand.Rand
}

// NewMarkov builds the chain from the paper's parameters: target packet
// loss probability p, mean burst length meanBurst (in packets, >= 1), and
// packet sending rate pktRate (packets/second). Following Section 4.2,
//
//	Lambda1 = -pktRate * ln(1 - 1/meanBurst)   (exit rate from the loss state)
//	Lambda0 = Lambda1 * p/(1-p)                (so that pi1 = p)
//
// which makes the run of consecutive lost packets at spacing 1/pktRate
// geometric with mean meanBurst. meanBurst == 1 degenerates to Bernoulli
// behaviour in the limit; use NewBernoulli for that case instead.
func NewMarkov(p, meanBurst, pktRate float64, rng *rand.Rand) *Markov {
	if p <= 0 || p >= 1 || math.IsNaN(p) {
		panic(fmt.Sprintf("loss: Markov p = %g, need 0 < p < 1", p))
	}
	if meanBurst <= 1 {
		panic(fmt.Sprintf("loss: Markov meanBurst = %g, need > 1", meanBurst))
	}
	if pktRate <= 0 {
		panic(fmt.Sprintf("loss: Markov pktRate = %g", pktRate))
	}
	l1 := -pktRate * math.Log(1-1/meanBurst)
	l0 := l1 * p / (1 - p)
	m := &Markov{Lambda0: l0, Lambda1: l1, rate: l0 + l1, pi1: p, rng: rng}
	m.Reset()
	return m
}

// Reset draws the state from the stationary distribution.
func (m *Markov) Reset() {
	if m.rng.Float64() < m.pi1 {
		m.state = 1
	} else {
		m.state = 0
	}
}

// State returns the current chain state (0 = good, 1 = loss).
func (m *Markov) State() int { return m.state }

// P11 returns P(X_{t+dt} = 1 | X_t = 1).
func (m *Markov) P11(dt float64) float64 {
	return m.pi1 + (1-m.pi1)*math.Exp(-m.rate*dt)
}

// P01 returns P(X_{t+dt} = 1 | X_t = 0).
func (m *Markov) P01(dt float64) float64 {
	return m.pi1 * (1 - math.Exp(-m.rate*dt))
}

// Lost advances the chain by dt and reports loss.
func (m *Markov) Lost(dt float64) bool {
	var pLoss float64
	if m.state == 1 {
		pLoss = m.P11(dt)
	} else {
		pLoss = m.P01(dt)
	}
	if m.rng.Float64() < pLoss {
		m.state = 1
		return true
	}
	m.state = 0
	return false
}

// Population is a set of R receivers with a joint spatial loss draw: one
// multicast transmission, one outcome per receiver.
type Population interface {
	// R returns the number of receivers.
	R() int
	// Draw advances every receiver by dt seconds and records in lost
	// (length R) whether each receiver misses a packet sent now.
	Draw(dt float64, lost []bool)
	// Reset re-initialises all receiver state.
	Reset()
}

// Independent is a Population of mutually independent per-receiver
// processes (homogeneous or heterogeneous).
type Independent struct {
	procs []Process
}

// NewIndependent wraps per-receiver processes into a Population.
func NewIndependent(procs []Process) *Independent {
	if len(procs) == 0 {
		panic("loss: empty population")
	}
	return &Independent{procs: procs}
}

// NewIndependentBernoulli builds a homogeneous Bernoulli population of r
// receivers sharing one seeded source of randomness.
func NewIndependentBernoulli(r int, p float64, rng *rand.Rand) *Independent {
	procs := make([]Process, r)
	for i := range procs {
		procs[i] = NewBernoulli(p, rng)
	}
	return NewIndependent(procs)
}

// NewIndependentMarkov builds a homogeneous burst-loss population.
func NewIndependentMarkov(r int, p, meanBurst, pktRate float64, rng *rand.Rand) *Independent {
	procs := make([]Process, r)
	for i := range procs {
		procs[i] = NewMarkov(p, meanBurst, pktRate, rng)
	}
	return NewIndependent(procs)
}

// R implements Population.
func (ip *Independent) R() int { return len(ip.procs) }

// Draw implements Population.
func (ip *Independent) Draw(dt float64, lost []bool) {
	if len(lost) != len(ip.procs) {
		panic(fmt.Sprintf("loss: Draw buffer %d != R %d", len(lost), len(ip.procs)))
	}
	for i, p := range ip.procs {
		lost[i] = p.Lost(dt)
	}
}

// Reset implements Population.
func (ip *Independent) Reset() {
	for _, p := range ip.procs {
		p.Reset()
	}
}
