// Package loss implements the packet-loss processes of the paper's
// evaluation: spatially and temporally independent Bernoulli loss
// (Section 3), two-state continuous-time Markov ("burst") loss fitted to
// Bolot's Internet measurements (Section 4.2), and full-binary-tree shared
// loss where one faulty node affects its whole subtree (Section 4.1).
// All processes are deterministic functions of their seed, which keeps the
// Monte-Carlo figures reproducible.
package loss

import (
	"fmt"
	"math"
	"math/rand"
)

// Process is a temporal loss process observed by a single receiver. A
// multicast packet sent dt seconds after the previous one is lost with a
// probability that may depend on the process state (burst loss) or not
// (Bernoulli).
type Process interface {
	// Lost advances the process clock by dt seconds and reports whether a
	// packet sent at the new instant is lost.
	Lost(dt float64) bool
	// Reset re-draws the initial (stationary) state.
	Reset()
}

// Bernoulli is temporally independent loss with probability P.
type Bernoulli struct {
	P   float64
	rng *rand.Rand
}

// NewBernoulli returns an independent loss process with probability p.
func NewBernoulli(p float64, rng *rand.Rand) *Bernoulli {
	if p < 0 || p > 1 || math.IsNaN(p) {
		panic(fmt.Sprintf("loss: Bernoulli p = %g", p))
	}
	return &Bernoulli{P: p, rng: rng}
}

// Lost implements Process; dt is irrelevant for memoryless loss.
func (b *Bernoulli) Lost(float64) bool { return b.rng.Float64() < b.P }

// Reset implements Process (no state).
func (b *Bernoulli) Reset() {}

// Markov is the paper's two-state continuous-time Markov chain: state 0 =
// no loss, state 1 = loss. A packet transmitted while the chain is in
// state 1 is lost. The chain leaves state 0 at rate Lambda0 and state 1 at
// rate Lambda1, giving stationary loss probability
// pi1 = Lambda0/(Lambda0+Lambda1).
type Markov struct {
	Lambda0, Lambda1 float64
	rate             float64 // Lambda0 + Lambda1
	pi1              float64
	state            int
	rng              *rand.Rand
}

// NewMarkov builds the chain from the paper's parameters: target packet
// loss probability p, mean burst length meanBurst (in packets, >= 1), and
// packet sending rate pktRate (packets/second). Following Section 4.2,
//
//	Lambda1 = -pktRate * ln(1 - 1/meanBurst)   (exit rate from the loss state)
//	Lambda0 = Lambda1 * p/(1-p)                (so that pi1 = p)
//
// which makes the run of consecutive lost packets at spacing 1/pktRate
// geometric with mean meanBurst. meanBurst == 1 degenerates to Bernoulli
// behaviour in the limit; use NewBernoulli for that case instead.
func NewMarkov(p, meanBurst, pktRate float64, rng *rand.Rand) *Markov {
	if p <= 0 || p >= 1 || math.IsNaN(p) {
		panic(fmt.Sprintf("loss: Markov p = %g, need 0 < p < 1", p))
	}
	if meanBurst <= 1 {
		panic(fmt.Sprintf("loss: Markov meanBurst = %g, need > 1", meanBurst))
	}
	if pktRate <= 0 {
		panic(fmt.Sprintf("loss: Markov pktRate = %g", pktRate))
	}
	l1 := -pktRate * math.Log(1-1/meanBurst)
	l0 := l1 * p / (1 - p)
	m := &Markov{Lambda0: l0, Lambda1: l1, rate: l0 + l1, pi1: p, rng: rng}
	m.Reset()
	return m
}

// Reset draws the state from the stationary distribution.
func (m *Markov) Reset() {
	if m.rng.Float64() < m.pi1 {
		m.state = 1
	} else {
		m.state = 0
	}
}

// State returns the current chain state (0 = good, 1 = loss).
func (m *Markov) State() int { return m.state }

// P11 returns P(X_{t+dt} = 1 | X_t = 1).
func (m *Markov) P11(dt float64) float64 {
	return m.pi1 + (1-m.pi1)*math.Exp(-m.rate*dt)
}

// P01 returns P(X_{t+dt} = 1 | X_t = 0).
func (m *Markov) P01(dt float64) float64 {
	return m.pi1 * (1 - math.Exp(-m.rate*dt))
}

// Lost advances the chain by dt and reports loss.
func (m *Markov) Lost(dt float64) bool {
	var pLoss float64
	if m.state == 1 {
		pLoss = m.P11(dt)
	} else {
		pLoss = m.P01(dt)
	}
	if m.rng.Float64() < pLoss {
		m.state = 1
		return true
	}
	m.state = 0
	return false
}

// Population is a set of R receivers with a joint spatial loss draw: one
// multicast transmission, one outcome per receiver.
type Population interface {
	// R returns the number of receivers.
	R() int
	// Draw advances every receiver by dt seconds and records in lost
	// (length R) whether each receiver misses a packet sent now.
	Draw(dt float64, lost []bool)
	// Reset re-initialises all receiver state.
	Reset()
}

// SparsePopulation is an optional extension of Population for loss
// processes that can enumerate the lost receivers of a transmission
// directly, in expected time proportional to the number of losses rather
// than the number of receivers. The simulation engines type-assert for it
// and fall back to a dense Draw plus scan when it is absent
// (heterogeneous Independent populations, where each receiver owns an
// arbitrary Process that must be advanced individually).
type SparsePopulation interface {
	Population
	// DrawLost advances every receiver by dt seconds and returns the
	// indices of the receivers that miss a packet sent now, in ascending
	// order without duplicates. The returned slice is owned by the
	// population and only valid until the next DrawLost or Draw call.
	DrawLost(dt float64) []int
}

// SubsetPopulation is an optional extension of SparsePopulation for
// MEMORYLESS loss processes: because no receiver carries temporal state,
// the population can draw the outcome of a transmission for a subset of
// receivers without simulating the rest. Engines use it to restrict later
// rounds to the still-active receivers, making a round cost O(p*active)
// instead of O(p*R). Populations with per-receiver state (Markov) or
// cross-receiver structure (FBT) must not implement it; the engines fall
// back to a full draw plus an intersection for those.
type SubsetPopulation interface {
	SparsePopulation
	// DrawLostAmong returns the members of among (ascending, no
	// duplicates) that miss a packet sent now, in ascending order. The
	// returned slice is owned by the population, is only valid until the
	// next Draw* call, and must not alias among.
	DrawLostAmong(dt float64, among []int) []int
}

// Independent is a Population of mutually independent per-receiver
// processes (homogeneous or heterogeneous).
type Independent struct {
	procs []Process
}

// NewIndependent wraps per-receiver processes into a Population.
func NewIndependent(procs []Process) *Independent {
	if len(procs) == 0 {
		panic("loss: empty population")
	}
	return &Independent{procs: procs}
}

// NewIndependentBernoulli builds a homogeneous Bernoulli population of r
// receivers sharing one seeded source of randomness.
func NewIndependentBernoulli(r int, p float64, rng *rand.Rand) *Independent {
	procs := make([]Process, r)
	for i := range procs {
		procs[i] = NewBernoulli(p, rng)
	}
	return NewIndependent(procs)
}

// NewIndependentMarkov builds a homogeneous burst-loss population.
func NewIndependentMarkov(r int, p, meanBurst, pktRate float64, rng *rand.Rand) *Independent {
	procs := make([]Process, r)
	for i := range procs {
		procs[i] = NewMarkov(p, meanBurst, pktRate, rng)
	}
	return NewIndependent(procs)
}

// R implements Population.
func (ip *Independent) R() int { return len(ip.procs) }

// Draw implements Population.
func (ip *Independent) Draw(dt float64, lost []bool) {
	if len(lost) != len(ip.procs) {
		panic(fmt.Sprintf("loss: Draw buffer %d != R %d", len(lost), len(ip.procs)))
	}
	for i, p := range ip.procs {
		lost[i] = p.Lost(dt)
	}
}

// Reset implements Population.
func (ip *Independent) Reset() {
	for _, p := range ip.procs {
		p.Reset()
	}
}

// BernoulliPopulation is a homogeneous independent-Bernoulli population
// with a sparse draw kernel: DrawLost enumerates the lost receivers by
// geometric skip-sampling, spending one RNG draw (and one log) per LOST
// receiver instead of one uniform per receiver. At p = 0.01 that is ~100x
// fewer RNG calls than the dense Independent population while remaining
// distributionally identical — the gaps between consecutive lost indices
// are exactly the Geometric(p) gaps of R independent Bernoulli trials.
type BernoulliPopulation struct {
	r    int
	p    float64
	logq float64 // ln(1-p); 0 when p is 0 or 1 (both special-cased)
	rng  *rand.Rand
	idx  []int // DrawLost scratch, reused across draws
}

// NewBernoulliPopulation returns a sparse homogeneous Bernoulli population
// of r receivers each losing packets independently with probability p.
func NewBernoulliPopulation(r int, p float64, rng *rand.Rand) *BernoulliPopulation {
	if r < 1 {
		panic(fmt.Sprintf("loss: BernoulliPopulation r = %d", r))
	}
	if p < 0 || p > 1 || math.IsNaN(p) {
		panic(fmt.Sprintf("loss: BernoulliPopulation p = %g", p))
	}
	bp := &BernoulliPopulation{r: r, p: p, rng: rng}
	if p > 0 && p < 1 {
		bp.logq = math.Log1p(-p)
	}
	return bp
}

// R implements Population.
func (bp *BernoulliPopulation) R() int { return bp.r }

// Reset implements Population (memoryless).
func (bp *BernoulliPopulation) Reset() {}

// DrawLost implements SparsePopulation: geometric jumps between lost
// receiver indices.
func (bp *BernoulliPopulation) DrawLost(float64) []int {
	bp.idx = bp.idx[:0]
	switch {
	case bp.p == 0:
		return bp.idx
	case bp.p == 1:
		for j := 0; j < bp.r; j++ {
			bp.idx = append(bp.idx, j)
		}
		return bp.idx
	}
	bp.idx = geoSample(bp.idx, bp.r, bp.p, bp.rng)
	return bp.idx
}

// DrawLostAmong implements SubsetPopulation: the same geometric jumps, but
// over positions of the among list, so a draw restricted to A receivers
// costs O(p*A) regardless of R. Each member of among is an independent
// Bernoulli(p) trial, exactly as in the full draw.
func (bp *BernoulliPopulation) DrawLostAmong(_ float64, among []int) []int {
	bp.idx = bp.idx[:0]
	switch {
	case bp.p == 0:
		return bp.idx
	case bp.p == 1:
		bp.idx = append(bp.idx, among...)
		return bp.idx
	}
	a := len(among)
	for i := geoNext(-1, a, bp.p, bp.logq, bp.rng); i < a; i = geoNext(i, a, bp.p, bp.logq, bp.rng) {
		bp.idx = append(bp.idx, among[i])
	}
	return bp.idx
}

// Draw implements Population by scattering DrawLost into the dense buffer,
// so dense and sparse callers observe the same loss process.
func (bp *BernoulliPopulation) Draw(dt float64, lost []bool) {
	if len(lost) != bp.r {
		panic(fmt.Sprintf("loss: Draw buffer %d != R %d", len(lost), bp.r))
	}
	for i := range lost {
		lost[i] = false
	}
	for _, j := range bp.DrawLost(dt) {
		lost[j] = true
	}
}

// MarkovPopulation is a homogeneous independent two-state Markov ("burst")
// population with a sparse draw kernel. The chain of Markov.Lost leaves a
// receiver in state 1 exactly when its last packet was lost, so the whole
// population state is the (small, ~p*R) set of receivers lost on the
// previous draw. A draw then costs O(p*R): the state-1 members are tried
// individually at P11(dt), and the state-0 complement is skip-sampled
// geometrically at the small P01(dt), exactly reproducing R independent
// chains without touching the ~(1-p)*R untouched receivers.
type MarkovPopulation struct {
	r      int
	chain  *Markov // transition probabilities; its own state is unused
	rng    *rand.Rand
	state1 []int // receivers in the loss state, ascending
	idx    []int // DrawLost result scratch
}

// NewMarkovPopulation returns a sparse homogeneous burst-loss population;
// the parameters match NewMarkov/NewIndependentMarkov.
func NewMarkovPopulation(r int, p, meanBurst, pktRate float64, rng *rand.Rand) *MarkovPopulation {
	if r < 1 {
		panic(fmt.Sprintf("loss: MarkovPopulation r = %d", r))
	}
	mp := &MarkovPopulation{r: r, chain: NewMarkov(p, meanBurst, pktRate, rng), rng: rng}
	mp.Reset()
	return mp
}

// R implements Population.
func (mp *MarkovPopulation) R() int { return mp.r }

// Reset implements Population: re-draw every receiver's state from the
// stationary distribution, i.e. skip-sample the state-1 set at pi1.
func (mp *MarkovPopulation) Reset() {
	mp.state1 = geoSample(mp.state1[:0], mp.r, mp.chain.pi1, mp.rng)
}

// DrawLost implements SparsePopulation.
func (mp *MarkovPopulation) DrawLost(dt float64) []int {
	p11 := mp.chain.P11(dt)
	p01 := mp.chain.P01(dt)
	mp.idx = mp.idx[:0]

	// Survivors drop to state 0 and the lost set IS the next state-1 set,
	// so merge the two lost streams (both ascending) directly into idx.
	// State-0 receivers are skip-sampled over their positions in the
	// complement of state1; position q maps to receiver id q+si where si
	// counts the state-1 members below it (monotone in q, one fused walk).
	c0 := mp.r - len(mp.state1)
	logq := 0.0
	if p01 > 0 && p01 < 1 {
		logq = math.Log1p(-p01)
	}
	si := 0 // state1 members consumed by the position mapping
	mi := 0 // state1 members merged into idx
	q := geoNext(-1, c0, p01, logq, mp.rng)
	for q < c0 {
		for si < len(mp.state1) && mp.state1[si] <= q+si {
			si++
		}
		id := q + si
		// Emit state-1 losses below id first to keep idx ascending.
		for ; mi < si; mi++ {
			if mp.rng.Float64() < p11 {
				mp.idx = append(mp.idx, mp.state1[mi])
			}
		}
		mp.idx = append(mp.idx, id)
		q = geoNext(q, c0, p01, logq, mp.rng)
	}
	for ; mi < len(mp.state1); mi++ {
		if mp.rng.Float64() < p11 {
			mp.idx = append(mp.idx, mp.state1[mi])
		}
	}
	mp.state1 = append(mp.state1[:0], mp.idx...)
	return mp.idx
}

// Draw implements Population by scattering DrawLost, so dense and sparse
// callers observe the same loss process.
func (mp *MarkovPopulation) Draw(dt float64, lost []bool) {
	if len(lost) != mp.r {
		panic(fmt.Sprintf("loss: Draw buffer %d != R %d", len(lost), mp.r))
	}
	for i := range lost {
		lost[i] = false
	}
	for _, j := range mp.DrawLost(dt) {
		lost[j] = true
	}
}

// geoSample appends a Bernoulli(p) subset of [0, limit) to dst by
// geometric skip-sampling, ascending.
func geoSample(dst []int, limit int, p float64, rng *rand.Rand) []int {
	logq := 0.0
	if p > 0 && p < 1 {
		logq = math.Log1p(-p)
	}
	for j := geoNext(-1, limit, p, logq, rng); j < limit; j = geoNext(j, limit, p, logq, rng) {
		dst = append(dst, j)
	}
	return dst
}

// geoNext returns the smallest success index > prev of Bernoulli(p) trials,
// or limit when the remaining trials all fail; logq = ln(1-p) for 0<p<1.
func geoNext(prev, limit int, p float64, logq float64, rng *rand.Rand) int {
	switch {
	case p <= 0:
		return limit
	case p >= 1:
		return prev + 1
	}
	u := rng.Float64()
	for u == 0 {
		u = rng.Float64()
	}
	skip := int(math.Log(u) / logq) // floor; >= 0
	next := prev + 1 + skip
	if next < 0 || next > limit { // overflow guard
		return limit
	}
	return next
}
