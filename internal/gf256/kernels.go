package gf256

// Word-parallel multiply-accumulate kernels.
//
// The byte-at-a-time kernels (kept below as MulAddSliceScalar and
// MulSliceScalar — the correctness oracle and the baseline the benchmark
// gate compares against) spend most of their time on per-byte loads,
// stores and bounds checks rather than on field arithmetic. The kernels
// here instead move 64 bits per memory operation. Three table layouts are
// implemented; BenchmarkKernels measures all of them and DESIGN.md
// records why the pair-table kernel is the production dispatch:
//
//   - Pair tables (production): for each coefficient c a lazily built
//     65536-entry table maps a byte *pair* (b0, b1) to the packed pair of
//     products (c*b0, c*b1). A 64-bit word then needs only four table
//     lookups, one 64-bit load and one 64-bit store — half the lookups of
//     the full-row word kernel and a quarter of the split-nibble one.
//     This is the layout GF-Complete calls SPLIT(8,8). Tables are 128 KiB
//     per coefficient, built on first use and published with an atomic
//     pointer (32 MiB ceiling if all 254 non-trivial coefficients are
//     ever exercised). The layout only pays while the live tables fit in
//     cache: measured on the reference host it beats the scalar loop up
//     to roughly 32 distinct coefficients and collapses to ~0.25x beyond
//     64, so the rse codec counts the distinct coefficients of each
//     generator or decode matrix and falls back to the *Compact forms
//     (gf256.go) past its budget.
//
//   - Split-nibble (ablation): two 16-entry tables per coefficient
//     (mulLo, mulHi — 8 KiB total, always L1-resident), the SWAR analogue
//     of the PSHUFB trick every SIMD erasure coder uses: c*x =
//     c*(x & 0x0f) ^ c*(x & 0xf0). Sixteen lookups per word; the
//     register-assembly cost makes it slower than scalar in pure Go on
//     the hosts measured, which is why it is not the default.
//
//   - Full-row word (ablation): eight lookups per word into the
//     coefficient's 256-entry row of mulTbl.
//
// All kernels re-slice up front (d := dst[:len(src)]) so the compiler
// drops bounds checks, go through encoding/binary — no unsafe, no
// goroutines — and are bit-identical to the scalar reference on every
// input (see TestKernelsMatchScalar).
//
// The c == 1 case (pure XOR: parity accumulation with unit coefficient,
// AddSlice) skips the tables entirely and XORs four words per iteration.

import (
	"encoding/binary"
	"sync/atomic"
)

var (
	// mulLo[c][x] = c*x for x in [0,16): products of the low nibble.
	mulLo [256][16]byte
	// mulHi[c][x] = c*(x<<4): products of the high nibble.
	mulHi [256][16]byte
	// pairTbls[c] points to the coefficient's pair-product table:
	// entry b0|b1<<8 holds c*b0 | (c*b1)<<8. Built lazily by
	// pairTableFor, published atomically; never mutated after publish.
	pairTbls [256]atomic.Pointer[[65536]uint16]
)

// buildNibbleTables fills the split-nibble product tables; called from the
// package init in gf256.go once the log/exp tables exist.
func buildNibbleTables() {
	for c := 0; c < 256; c++ {
		for x := 0; x < 16; x++ {
			mulLo[c][x] = mulSlow(byte(c), byte(x))
			mulHi[c][x] = mulSlow(byte(c), byte(x<<4))
		}
	}
}

// pairTableFor returns the pair-product table for c, building it on first
// use. Concurrent first calls may both build; the CompareAndSwap keeps one
// winner and the duplicate is garbage-collected, so no lock is needed.
func pairTableFor(c byte) *[65536]uint16 {
	if t := pairTbls[c].Load(); t != nil {
		return t
	}
	//rmlint:ignore hotpath-alloc pair table is built once per coefficient and cached in pairTbls
	t := new([65536]uint16)
	row := &mulTbl[c]
	for b0 := 0; b0 < 256; b0++ {
		p := uint16(row[b0])
		for b1 := 0; b1 < 256; b1++ {
			t[b0|b1<<8] = p | uint16(row[b1])<<8
		}
	}
	pairTbls[c].CompareAndSwap(nil, t)
	return pairTbls[c].Load()
}

// xorWords computes dst[i] ^= src[i] one 64-bit word at a time, 4x
// unrolled. len(dst) must be >= len(src); extra dst bytes are untouched.
func xorWords(src, dst []byte) {
	d := dst[:len(src)]
	s := src
	for len(s) >= 32 {
		binary.LittleEndian.PutUint64(d, binary.LittleEndian.Uint64(d)^binary.LittleEndian.Uint64(s))
		binary.LittleEndian.PutUint64(d[8:], binary.LittleEndian.Uint64(d[8:])^binary.LittleEndian.Uint64(s[8:]))
		binary.LittleEndian.PutUint64(d[16:], binary.LittleEndian.Uint64(d[16:])^binary.LittleEndian.Uint64(s[16:]))
		binary.LittleEndian.PutUint64(d[24:], binary.LittleEndian.Uint64(d[24:])^binary.LittleEndian.Uint64(s[24:]))
		s = s[32:]
		d = d[32:]
	}
	for len(s) >= 8 {
		binary.LittleEndian.PutUint64(d, binary.LittleEndian.Uint64(d)^binary.LittleEndian.Uint64(s))
		s = s[8:]
		d = d[8:]
	}
	for i, v := range s {
		d[i] ^= v
	}
}

// mulAddWords computes dst[i] ^= c*src[i] with the pair-table word kernel,
// two words per iteration; c must not be 0 or 1 (dispatched in
// MulAddSlice). The &0xffff masks prove the table indices in range, so the
// lookups compile without bounds checks.
func mulAddWords(c byte, src, dst []byte) {
	t := pairTableFor(c)
	d := dst[:len(src)]
	s := src
	for len(s) >= 16 {
		x := binary.LittleEndian.Uint64(s)
		y := binary.LittleEndian.Uint64(s[8:])
		w := uint64(t[x&0xffff]) | uint64(t[(x>>16)&0xffff])<<16 |
			uint64(t[(x>>32)&0xffff])<<32 | uint64(t[x>>48])<<48
		v := uint64(t[y&0xffff]) | uint64(t[(y>>16)&0xffff])<<16 |
			uint64(t[(y>>32)&0xffff])<<32 | uint64(t[y>>48])<<48
		binary.LittleEndian.PutUint64(d, binary.LittleEndian.Uint64(d)^w)
		binary.LittleEndian.PutUint64(d[8:], binary.LittleEndian.Uint64(d[8:])^v)
		s = s[16:]
		d = d[16:]
	}
	if len(s) >= 8 {
		x := binary.LittleEndian.Uint64(s)
		w := uint64(t[x&0xffff]) | uint64(t[(x>>16)&0xffff])<<16 |
			uint64(t[(x>>32)&0xffff])<<32 | uint64(t[x>>48])<<48
		binary.LittleEndian.PutUint64(d, binary.LittleEndian.Uint64(d)^w)
		s = s[8:]
		d = d[8:]
	}
	if len(s) > 0 {
		row := &mulTbl[c]
		for i, v := range s {
			d[i] ^= row[v]
		}
	}
}

// mulWords computes dst[i] = c*src[i] with the pair-table word kernel;
// c must not be 0 or 1 (dispatched in MulSlice).
func mulWords(c byte, src, dst []byte) {
	t := pairTableFor(c)
	d := dst[:len(src)]
	s := src
	for len(s) >= 16 {
		x := binary.LittleEndian.Uint64(s)
		y := binary.LittleEndian.Uint64(s[8:])
		w := uint64(t[x&0xffff]) | uint64(t[(x>>16)&0xffff])<<16 |
			uint64(t[(x>>32)&0xffff])<<32 | uint64(t[x>>48])<<48
		v := uint64(t[y&0xffff]) | uint64(t[(y>>16)&0xffff])<<16 |
			uint64(t[(y>>32)&0xffff])<<32 | uint64(t[y>>48])<<48
		binary.LittleEndian.PutUint64(d, w)
		binary.LittleEndian.PutUint64(d[8:], v)
		s = s[16:]
		d = d[16:]
	}
	if len(s) >= 8 {
		x := binary.LittleEndian.Uint64(s)
		w := uint64(t[x&0xffff]) | uint64(t[(x>>16)&0xffff])<<16 |
			uint64(t[(x>>32)&0xffff])<<32 | uint64(t[x>>48])<<48
		binary.LittleEndian.PutUint64(d, w)
		s = s[8:]
		d = d[8:]
	}
	if len(s) > 0 {
		row := &mulTbl[c]
		for i, v := range s {
			d[i] = row[v]
		}
	}
}

// mulWord returns the eight GF(2^8) products c*b for the packed bytes of
// x, using the coefficient's split-nibble tables. The &15 masks prove the
// indices in range, so the lookups compile without bounds checks.
func mulWord(lo, hi *[16]byte, x uint64) uint64 {
	return uint64(lo[x&15]^hi[(x>>4)&15]) |
		uint64(lo[(x>>8)&15]^hi[(x>>12)&15])<<8 |
		uint64(lo[(x>>16)&15]^hi[(x>>20)&15])<<16 |
		uint64(lo[(x>>24)&15]^hi[(x>>28)&15])<<24 |
		uint64(lo[(x>>32)&15]^hi[(x>>36)&15])<<32 |
		uint64(lo[(x>>40)&15]^hi[(x>>44)&15])<<40 |
		uint64(lo[(x>>48)&15]^hi[(x>>52)&15])<<48 |
		uint64(lo[(x>>56)&15]^hi[(x>>60)&15])<<56
}

// mulAddWordsNibble is the split-nibble ablation variant of mulAddWords:
// word-at-a-time loads/stores with sixteen L1-resident nibble lookups per
// word, 4x unrolled. Measured slower than the pair-table kernel in pure
// Go (the sixteen lookups plus register assembly dominate), so it is kept
// for BenchmarkKernels and the equivalence tests, not the dispatch.
func mulAddWordsNibble(c byte, src, dst []byte) {
	lo, hi := &mulLo[c], &mulHi[c]
	d := dst[:len(src)]
	s := src
	for len(s) >= 32 {
		binary.LittleEndian.PutUint64(d, binary.LittleEndian.Uint64(d)^mulWord(lo, hi, binary.LittleEndian.Uint64(s)))
		binary.LittleEndian.PutUint64(d[8:], binary.LittleEndian.Uint64(d[8:])^mulWord(lo, hi, binary.LittleEndian.Uint64(s[8:])))
		binary.LittleEndian.PutUint64(d[16:], binary.LittleEndian.Uint64(d[16:])^mulWord(lo, hi, binary.LittleEndian.Uint64(s[16:])))
		binary.LittleEndian.PutUint64(d[24:], binary.LittleEndian.Uint64(d[24:])^mulWord(lo, hi, binary.LittleEndian.Uint64(s[24:])))
		s = s[32:]
		d = d[32:]
	}
	for len(s) >= 8 {
		binary.LittleEndian.PutUint64(d, binary.LittleEndian.Uint64(d)^mulWord(lo, hi, binary.LittleEndian.Uint64(s)))
		s = s[8:]
		d = d[8:]
	}
	if len(s) > 0 {
		tbl := &mulTbl[c]
		for i, v := range s {
			d[i] ^= tbl[v]
		}
	}
}

// mulWordsNibble is the split-nibble ablation counterpart of mulWords.
func mulWordsNibble(c byte, src, dst []byte) {
	lo, hi := &mulLo[c], &mulHi[c]
	d := dst[:len(src)]
	s := src
	for len(s) >= 8 {
		binary.LittleEndian.PutUint64(d, mulWord(lo, hi, binary.LittleEndian.Uint64(s)))
		s = s[8:]
		d = d[8:]
	}
	if len(s) > 0 {
		tbl := &mulTbl[c]
		for i, v := range s {
			d[i] = tbl[v]
		}
	}
}

// mulAddWordsTable is the full-row ablation: word-at-a-time loads/stores
// with eight lookups per word into the coefficient's 256-entry product
// row (twice the lookups of the pair kernel, a 512x smaller working set).
// Kept for BenchmarkKernels to document the pair-table choice.
func mulAddWordsTable(c byte, src, dst []byte) {
	tbl := &mulTbl[c]
	d := dst[:len(src)]
	s := src
	for len(s) >= 8 {
		x := binary.LittleEndian.Uint64(s)
		w := uint64(tbl[x&0xff]) |
			uint64(tbl[(x>>8)&0xff])<<8 |
			uint64(tbl[(x>>16)&0xff])<<16 |
			uint64(tbl[(x>>24)&0xff])<<24 |
			uint64(tbl[(x>>32)&0xff])<<32 |
			uint64(tbl[(x>>40)&0xff])<<40 |
			uint64(tbl[(x>>48)&0xff])<<48 |
			uint64(tbl[(x>>56)&0xff])<<56
		binary.LittleEndian.PutUint64(d, binary.LittleEndian.Uint64(d)^w)
		s = s[8:]
		d = d[8:]
	}
	for i, v := range s {
		d[i] ^= tbl[v]
	}
}

// MulAddSliceScalar is the byte-at-a-time multiply-accumulate kernel that
// predates the word-parallel path: dst[i] ^= c*src[i] through the 64 KiB
// product table. It is retained as the reference implementation — the
// equivalence tests assert the word kernels match it byte for byte, and
// BenchmarkKernels reports the speedup of MulAddSlice against it.
func MulAddSliceScalar(c byte, src, dst []byte) {
	if len(src) != len(dst) {
		panic(lengthMismatch("MulAddSliceScalar", len(src), len(dst)))
	}
	switch c {
	case 0:
		return
	case 1:
		for i, s := range src {
			dst[i] ^= s
		}
	default:
		tbl := &mulTbl[c]
		for i, s := range src {
			dst[i] ^= tbl[s]
		}
	}
}

// MulSliceScalar is the byte-at-a-time counterpart of MulSlice, retained
// as the reference implementation for the word-parallel kernel.
func MulSliceScalar(c byte, src, dst []byte) {
	if len(src) != len(dst) {
		panic(lengthMismatch("MulSliceScalar", len(src), len(dst)))
	}
	switch c {
	case 0:
		for i := range dst {
			dst[i] = 0
		}
	case 1:
		copy(dst, src)
	default:
		tbl := &mulTbl[c]
		for i, s := range src {
			dst[i] = tbl[s]
		}
	}
}
