// Package gf256 implements arithmetic over the Galois field GF(2^8).
//
// The field is realised as polynomials over GF(2) modulo the primitive
// polynomial x^8 + x^4 + x^3 + x^2 + 1 (0x11d), the same generator used by
// McAuley's burst-erasure coder and Rizzo's software FEC coder that the
// paper builds on. Elements are bytes; addition is XOR; multiplication is
// carried out through logarithm/antilogarithm tables built at package
// initialisation.
//
// The package provides scalar operations, vectorised multiply-accumulate
// kernels used by the Reed-Solomon erasure codec in package rse, and dense
// matrix operations (Vandermonde construction, Gaussian-elimination
// inversion) over the field.
package gf256

import "fmt"

// Poly is the primitive polynomial generating the field, expressed with the
// x^8 term included: x^8+x^4+x^3+x^2+1.
const Poly = 0x11d

// Generator is the primitive element alpha = x whose powers enumerate all
// 255 non-zero field elements.
const Generator = 0x02

// Order is the number of elements of the field.
const Order = 256

var (
	// expTbl[i] = alpha^i for i in [0,510); doubled so Mul can skip a
	// modular reduction of the exponent sum.
	expTbl [510]byte
	// logTbl[x] = log_alpha(x) for x != 0. logTbl[0] is a sentinel that is
	// never read by correct code.
	logTbl [256]int32
	// mulTbl[x][y] = x*y. 64 KiB; the fast path for the codec kernels.
	mulTbl [256][256]byte
	// invTbl[x] = x^-1 for x != 0.
	invTbl [256]byte
)

func init() {
	x := 1
	for i := 0; i < 255; i++ {
		expTbl[i] = byte(x)
		logTbl[x] = int32(i)
		x <<= 1
		if x&0x100 != 0 {
			x ^= Poly
		}
	}
	if x != 1 {
		panic("gf256: 0x11d is not primitive (table construction bug)")
	}
	for i := 255; i < 510; i++ {
		expTbl[i] = expTbl[i-255]
	}
	logTbl[0] = -1 // sentinel
	for a := 0; a < 256; a++ {
		for b := 0; b < 256; b++ {
			mulTbl[a][b] = mulSlow(byte(a), byte(b))
		}
	}
	for a := 1; a < 256; a++ {
		invTbl[a] = expTbl[255-logTbl[a]]
	}
	buildNibbleTables()
}

// mulSlow multiplies via log/exp tables; used only to seed mulTbl.
func mulSlow(a, b byte) byte {
	if a == 0 || b == 0 {
		return 0
	}
	return expTbl[logTbl[a]+logTbl[b]]
}

// Add returns a+b in GF(2^8). Addition and subtraction coincide (XOR).
func Add(a, b byte) byte { return a ^ b }

// Sub returns a-b in GF(2^8); identical to Add.
func Sub(a, b byte) byte { return a ^ b }

// Mul returns the field product a*b.
func Mul(a, b byte) byte { return mulTbl[a][b] }

// Div returns a/b. It panics if b is zero.
func Div(a, b byte) byte {
	if b == 0 {
		panic("gf256: division by zero")
	}
	if a == 0 {
		return 0
	}
	return expTbl[logTbl[a]-logTbl[b]+255]
}

// Inv returns the multiplicative inverse of a. It panics if a is zero.
func Inv(a byte) byte {
	if a == 0 {
		panic("gf256: inverse of zero")
	}
	return invTbl[a]
}

// Exp returns alpha^e for e >= 0.
func Exp(e int) byte {
	if e < 0 {
		panic("gf256: negative exponent in Exp")
	}
	return expTbl[e%255]
}

// Log returns log_alpha(a) in [0,255). It panics if a is zero.
func Log(a byte) int {
	if a == 0 {
		panic("gf256: log of zero")
	}
	return int(logTbl[a])
}

// Pow returns a^e. a^0 == 1 for every a, including 0 (empty product).
func Pow(a byte, e int) byte {
	if e == 0 {
		return 1
	}
	if a == 0 {
		return 0
	}
	le := (int(logTbl[a]) * e) % 255
	if le < 0 {
		le += 255
	}
	return expTbl[le]
}

func lengthMismatch(op string, a, b int) string {
	return fmt.Sprintf("gf256: %s length mismatch %d != %d", op, a, b)
}

// MulSlice sets dst[i] = c*src[i] with the word-parallel kernel of
// kernels.go. dst and src must have equal length and must not alias unless
// identical. A zero coefficient zeroes dst; coefficient one copies.
//
//rmlint:hotpath
func MulSlice(c byte, src, dst []byte) {
	if len(src) != len(dst) {
		panic(lengthMismatch("MulSlice", len(src), len(dst)))
	}
	switch c {
	case 0:
		for i := range dst {
			dst[i] = 0
		}
	case 1:
		copy(dst, src)
	default:
		mulWords(c, src, dst)
	}
}

// MulAddSlice computes dst[i] ^= c*src[i], the multiply-accumulate kernel at
// the heart of Reed-Solomon encoding and decoding, with the word-parallel
// kernel of kernels.go. dst and src must have equal length and must not
// alias unless identical.
//
//rmlint:hotpath
func MulAddSlice(c byte, src, dst []byte) {
	if len(src) != len(dst) {
		panic(lengthMismatch("MulAddSlice", len(src), len(dst)))
	}
	switch c {
	case 0:
		return
	case 1:
		xorWords(src, dst)
	default:
		mulAddWords(c, src, dst)
	}
}

// MulSliceCompact is MulSlice restricted to the shared 64 KiB product
// table: the general case runs the byte-at-a-time row loop and no
// per-coefficient pair table is built or touched. Callers whose coefficient
// working set is large — the rse codec gates on the distinct-coefficient
// count of its generator matrix — use the compact forms, because cycling
// through many 128 KiB pair tables evicts them faster than they pay off
// (the word kernel drops to ~0.25x the scalar loop beyond ~64 live
// coefficients; see BenchmarkKernels and DESIGN.md).
//
//rmlint:hotpath
func MulSliceCompact(c byte, src, dst []byte) {
	if len(src) != len(dst) {
		panic(lengthMismatch("MulSliceCompact", len(src), len(dst)))
	}
	switch c {
	case 0:
		for i := range dst {
			dst[i] = 0
		}
	case 1:
		copy(dst, src)
	default:
		tbl := &mulTbl[c]
		for i, s := range src {
			dst[i] = tbl[s]
		}
	}
}

// MulAddSliceCompact is MulAddSlice restricted to the shared 64 KiB product
// table; see MulSliceCompact. The c == 1 case still runs the word-parallel
// XOR — it needs no per-coefficient table.
//
//rmlint:hotpath
func MulAddSliceCompact(c byte, src, dst []byte) {
	if len(src) != len(dst) {
		panic(lengthMismatch("MulAddSliceCompact", len(src), len(dst)))
	}
	switch c {
	case 0:
		return
	case 1:
		xorWords(src, dst)
	default:
		tbl := &mulTbl[c]
		for i, s := range src {
			dst[i] ^= tbl[s]
		}
	}
}

// AddSlice computes dst[i] ^= src[i], 64 bits at a time.
//
//rmlint:hotpath
func AddSlice(src, dst []byte) {
	if len(src) != len(dst) {
		panic(lengthMismatch("AddSlice", len(src), len(dst)))
	}
	xorWords(src, dst)
}

// DotProduct returns sum_i a[i]*b[i] over the field.
func DotProduct(a, b []byte) byte {
	if len(a) != len(b) {
		panic(fmt.Sprintf("gf256: DotProduct length mismatch %d != %d", len(a), len(b)))
	}
	var acc byte
	for i := range a {
		acc ^= mulTbl[a[i]][b[i]]
	}
	return acc
}
