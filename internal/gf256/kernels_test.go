package gf256

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
)

// TestKernelsMatchScalar sweeps the word-parallel kernels against the
// byte-at-a-time scalar reference across every coefficient, a ladder of
// lengths around the 8- and 32-byte loop boundaries (including lengths not
// divisible by 8) and all 8 sub-word alignments of both src and dst.
func TestKernelsMatchScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	lengths := []int{0, 1, 2, 3, 7, 8, 9, 15, 16, 17, 31, 32, 33, 63, 64, 65, 100, 255, 256, 1000, 1024}
	coeffs := make([]byte, 0, 256)
	for c := 0; c < 256; c++ {
		coeffs = append(coeffs, byte(c))
	}
	for _, n := range lengths {
		for _, align := range []int{0, 1, 3, 7} {
			backingSrc := make([]byte, n+align)
			backingDst := make([]byte, n+align)
			for _, c := range coeffs {
				rng.Read(backingSrc)
				rng.Read(backingDst)
				src := backingSrc[align:]
				dst := backingDst[align:]

				wantAdd := append([]byte(nil), dst...)
				MulAddSliceScalar(c, src, wantAdd)
				gotAdd := append([]byte(nil), dst...)
				MulAddSlice(c, src, gotAdd)
				if !bytes.Equal(gotAdd, wantAdd) {
					t.Fatalf("MulAddSlice(c=%#x, n=%d, align=%d) diverges from scalar", c, n, align)
				}

				wantMul := append([]byte(nil), dst...)
				MulSliceScalar(c, src, wantMul)
				gotMul := append([]byte(nil), dst...)
				MulSlice(c, src, gotMul)
				if !bytes.Equal(gotMul, wantMul) {
					t.Fatalf("MulSlice(c=%#x, n=%d, align=%d) diverges from scalar", c, n, align)
				}

				gotTbl := append([]byte(nil), dst...)
				mulAddWordsTable(c, src, gotTbl)
				if !bytes.Equal(gotTbl, wantAdd) {
					t.Fatalf("mulAddWordsTable(c=%#x, n=%d, align=%d) diverges from scalar", c, n, align)
				}

				gotNib := append([]byte(nil), dst...)
				mulAddWordsNibble(c, src, gotNib)
				if !bytes.Equal(gotNib, wantAdd) {
					t.Fatalf("mulAddWordsNibble(c=%#x, n=%d, align=%d) diverges from scalar", c, n, align)
				}

				gotNibMul := append([]byte(nil), dst...)
				mulWordsNibble(c, src, gotNibMul)
				if !bytes.Equal(gotNibMul, wantMul) {
					t.Fatalf("mulWordsNibble(c=%#x, n=%d, align=%d) diverges from scalar", c, n, align)
				}

				gotAddC := append([]byte(nil), dst...)
				MulAddSliceCompact(c, src, gotAddC)
				if !bytes.Equal(gotAddC, wantAdd) {
					t.Fatalf("MulAddSliceCompact(c=%#x, n=%d, align=%d) diverges from scalar", c, n, align)
				}

				gotMulC := append([]byte(nil), dst...)
				MulSliceCompact(c, src, gotMulC)
				if !bytes.Equal(gotMulC, wantMul) {
					t.Fatalf("MulSliceCompact(c=%#x, n=%d, align=%d) diverges from scalar", c, n, align)
				}
			}
		}
	}
}

// TestNibbleTablesConsistent pins the split-nibble identity the word kernel
// relies on: c*x == mulLo[c][x&15] ^ mulHi[c][x>>4] for every (c, x).
func TestNibbleTablesConsistent(t *testing.T) {
	for c := 0; c < 256; c++ {
		for x := 0; x < 256; x++ {
			want := Mul(byte(c), byte(x))
			got := mulLo[c][x&15] ^ mulHi[c][x>>4]
			if got != want {
				t.Fatalf("nibble split of %#x*%#x = %#x, want %#x", c, x, got, want)
			}
		}
	}
}

// TestKernelsIdenticalAlias checks the documented aliasing contract:
// src and dst may be the same slice.
func TestKernelsIdenticalAlias(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, n := range []int{5, 32, 100} {
		for _, c := range []byte{0, 1, 2, 0x53} {
			buf := make([]byte, n)
			rng.Read(buf)
			want := append([]byte(nil), buf...)
			MulAddSliceScalar(c, want, want)
			got := append([]byte(nil), buf...)
			MulAddSlice(c, got, got)
			if !bytes.Equal(got, want) {
				t.Fatalf("MulAddSlice self-alias (c=%#x, n=%d) diverges", c, n)
			}

			want = append([]byte(nil), buf...)
			MulSliceScalar(c, want, want)
			got = append([]byte(nil), buf...)
			MulSlice(c, got, got)
			if !bytes.Equal(got, want) {
				t.Fatalf("MulSlice self-alias (c=%#x, n=%d) diverges", c, n)
			}
		}
	}
}

func TestAddSliceMatchesXor(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{0, 1, 7, 8, 9, 33, 1024} {
		src := make([]byte, n)
		dst := make([]byte, n)
		rng.Read(src)
		rng.Read(dst)
		want := make([]byte, n)
		for i := range want {
			want[i] = dst[i] ^ src[i]
		}
		AddSlice(src, dst)
		if !bytes.Equal(dst, want) {
			t.Fatalf("AddSlice(n=%d) wrong", n)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("AddSlice length mismatch did not panic")
		}
	}()
	AddSlice(make([]byte, 3), make([]byte, 4))
}

// BenchmarkKernels is the micro-benchmark suite behind the Fig-1 hot path:
// the word-parallel kernels against the scalar reference they replaced
// (the acceptance gate of PR 2 requires >= 2x on MulAdd at 1 KiB), plus
// the two ablation layouts documenting the pair-table choice. check.sh
// runs it with -benchtime 1x so it cannot bit-rot.
func BenchmarkKernels(b *testing.B) {
	sizes := []int{64, 1024, 4096}
	const c = 0x57
	for _, n := range sizes {
		src := make([]byte, n)
		dst := make([]byte, n)
		rand.New(rand.NewSource(2)).Read(src)
		pairTableFor(c) // build outside the timed region
		name := func(op string) string { return fmt.Sprintf("%s/%dB", op, n) }
		run := func(op string, f func()) {
			b.Run(name(op), func(b *testing.B) {
				b.SetBytes(int64(n))
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					f()
				}
			})
		}
		run("MulAdd", func() { MulAddSlice(c, src, dst) })
		run("MulAddScalarRef", func() { MulAddSliceScalar(c, src, dst) })
		run("MulAddNibbleWord", func() { mulAddWordsNibble(c, src, dst) })
		run("MulAddFullTableWord", func() { mulAddWordsTable(c, src, dst) })
		run("Mul", func() { MulSlice(c, src, dst) })
		run("MulScalarRef", func() { MulSliceScalar(c, src, dst) })
		run("Xor", func() { AddSlice(src, dst) })
		run("XorScalarRef", func() { MulAddSliceScalar(1, src, dst) })
	}
}
