package gf256

import (
	"errors"
	"math/rand"
	"testing"
)

func randomMatrix(rng *rand.Rand, rows, cols int) *Matrix {
	m := NewMatrix(rows, cols)
	rng.Read(m.Data)
	return m
}

func matricesEqual(a, b *Matrix) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			return false
		}
	}
	return true
}

func TestIdentityMul(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{1, 2, 5, 16} {
		m := randomMatrix(rng, n, n)
		if !matricesEqual(m.Mul(Identity(n)), m) {
			t.Errorf("m*I != m for n=%d", n)
		}
		if !matricesEqual(Identity(n).Mul(m), m) {
			t.Errorf("I*m != m for n=%d", n)
		}
	}
}

func TestInvertRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, n := range []int{1, 2, 3, 7, 20} {
		for trial := 0; trial < 20; trial++ {
			m := randomMatrix(rng, n, n)
			inv, err := m.Invert()
			if errors.Is(err, ErrSingular) {
				continue // random matrices are occasionally singular
			}
			if err != nil {
				t.Fatalf("Invert: %v", err)
			}
			if !matricesEqual(m.Mul(inv), Identity(n)) {
				t.Fatalf("m*m^-1 != I for n=%d", n)
			}
			if !matricesEqual(inv.Mul(m), Identity(n)) {
				t.Fatalf("m^-1*m != I for n=%d", n)
			}
		}
	}
}

func TestInvertSingular(t *testing.T) {
	m := NewMatrix(2, 2)
	m.Set(0, 0, 5)
	m.Set(0, 1, 7)
	m.Set(1, 0, 5)
	m.Set(1, 1, 7) // duplicate row
	if _, err := m.Invert(); !errors.Is(err, ErrSingular) {
		t.Errorf("Invert of singular matrix: err = %v, want ErrSingular", err)
	}
	z := NewMatrix(3, 3) // all-zero
	if _, err := z.Invert(); !errors.Is(err, ErrSingular) {
		t.Errorf("Invert of zero matrix: err = %v, want ErrSingular", err)
	}
}

func TestVandermondeRowSubmatricesInvertible(t *testing.T) {
	// Any k rows of an n x k Vandermonde matrix with distinct evaluation
	// points form an invertible matrix: this is the property the systematic
	// RS construction in package rse depends on.
	const n, k = 12, 5
	v := Vandermonde(n, k, 0)
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		rows := rng.Perm(n)[:k]
		if _, err := v.SubMatrix(rows).Invert(); err != nil {
			t.Fatalf("rows %v of Vandermonde singular: %v", rows, err)
		}
	}
}

func TestPowerVandermonde(t *testing.T) {
	m := PowerVandermonde(4, 3)
	for i := 0; i < 4; i++ {
		for j := 0; j < 3; j++ {
			if got, want := m.At(i, j), Pow(Exp(i), j); got != want {
				t.Errorf("entry (%d,%d) = %#x, want %#x", i, j, got, want)
			}
		}
	}
}

func TestMulVecAgainstMatMul(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := randomMatrix(rng, 6, 4)
	v := make([]byte, 4)
	rng.Read(v)
	col := NewMatrix(4, 1)
	copy(col.Data, v)
	prod := a.Mul(col)
	got := a.MulVec(v)
	for i := range got {
		if got[i] != prod.At(i, 0) {
			t.Fatalf("MulVec[%d] = %#x, want %#x", i, got[i], prod.At(i, 0))
		}
	}
}

func TestMatrixMulAssociative(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := randomMatrix(rng, 3, 4)
	b := randomMatrix(rng, 4, 5)
	c := randomMatrix(rng, 5, 2)
	if !matricesEqual(a.Mul(b).Mul(c), a.Mul(b.Mul(c))) {
		t.Error("(ab)c != a(bc)")
	}
}

func TestMatrixPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("zero dims", func() { NewMatrix(0, 3) })
	mustPanic("product mismatch", func() { NewMatrix(2, 3).Mul(NewMatrix(2, 3)) })
	mustPanic("MulVec mismatch", func() { NewMatrix(2, 3).MulVec(make([]byte, 2)) })
	mustPanic("Invert non-square", func() { NewMatrix(2, 3).Invert() }) //nolint:errcheck
	mustPanic("Vandermonde too tall", func() { Vandermonde(300, 3, 0) })
}

func TestSubMatrix(t *testing.T) {
	m := Vandermonde(5, 3, 0)
	s := m.SubMatrix([]int{4, 1})
	for j := 0; j < 3; j++ {
		if s.At(0, j) != m.At(4, j) || s.At(1, j) != m.At(1, j) {
			t.Fatal("SubMatrix rows wrong")
		}
	}
}

func BenchmarkMatrixInvert20(b *testing.B) {
	v := Vandermonde(40, 20, 0)
	rows := rand.New(rand.NewSource(8)).Perm(40)[:20]
	sub := v.SubMatrix(rows)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sub.Invert(); err != nil {
			b.Fatal(err)
		}
	}
}
