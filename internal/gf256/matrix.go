package gf256

import (
	"errors"
	"fmt"
)

// Matrix is a dense row-major matrix over GF(2^8).
type Matrix struct {
	Rows, Cols int
	Data       []byte // len Rows*Cols
}

// NewMatrix returns a zeroed rows x cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("gf256: invalid matrix dimensions %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]byte, rows*cols)}
}

// Identity returns the n x n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Vandermonde returns the rows x cols matrix V with V[i][j] = alpha_i^j,
// where alpha_i is the field element with value i+shift. With shift 1 the
// evaluation points are 1, alpha^?... — more precisely the points are the
// consecutive field values i+shift interpreted as elements, which are
// pairwise distinct for rows+shift <= 256, making every square submatrix of
// the systematic construction invertible.
func Vandermonde(rows, cols, shift int) *Matrix {
	if rows+shift > Order {
		panic(fmt.Sprintf("gf256: Vandermonde needs rows+shift <= %d, got %d", Order, rows+shift))
	}
	m := NewMatrix(rows, cols)
	for i := 0; i < rows; i++ {
		x := byte(i + shift)
		v := byte(1)
		for j := 0; j < cols; j++ {
			m.Set(i, j, v)
			v = Mul(v, x)
		}
	}
	return m
}

// PowerVandermonde returns the rows x cols matrix with entry
// (alpha^i)^j = alpha^{i*j}, the form used by the paper's RSE encoder where
// parity j is F(alpha^{j-1}) for the data polynomial F. Rows index the
// evaluation point exponent, columns the coefficient.
func PowerVandermonde(rows, cols int) *Matrix {
	m := NewMatrix(rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			m.Set(i, j, Exp(i*j))
		}
	}
	return m
}

// At returns element (r,c).
func (m *Matrix) At(r, c int) byte { return m.Data[r*m.Cols+c] }

// Set assigns element (r,c).
func (m *Matrix) Set(r, c int, v byte) { m.Data[r*m.Cols+c] = v }

// Row returns a view of row r.
func (m *Matrix) Row(r int) []byte { return m.Data[r*m.Cols : (r+1)*m.Cols] }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	n := NewMatrix(m.Rows, m.Cols)
	copy(n.Data, m.Data)
	return n
}

// Mul returns the matrix product m*other.
func (m *Matrix) Mul(other *Matrix) *Matrix {
	if m.Cols != other.Rows {
		panic(fmt.Sprintf("gf256: matrix product dimension mismatch %dx%d * %dx%d",
			m.Rows, m.Cols, other.Rows, other.Cols))
	}
	out := NewMatrix(m.Rows, other.Cols)
	for i := 0; i < m.Rows; i++ {
		mi := m.Row(i)
		oi := out.Row(i)
		for k := 0; k < m.Cols; k++ {
			if c := mi[k]; c != 0 {
				MulAddSlice(c, other.Row(k), oi)
			}
		}
	}
	return out
}

// MulVec returns m*v for a column vector v of length m.Cols.
func (m *Matrix) MulVec(v []byte) []byte {
	if len(v) != m.Cols {
		panic(fmt.Sprintf("gf256: MulVec length mismatch %d != %d", len(v), m.Cols))
	}
	out := make([]byte, m.Rows)
	for i := 0; i < m.Rows; i++ {
		out[i] = DotProduct(m.Row(i), v)
	}
	return out
}

// ErrSingular is returned by Invert when the matrix has no inverse.
var ErrSingular = errors.New("gf256: singular matrix")

// Invert returns the inverse of a square matrix using Gauss-Jordan
// elimination with partial pivoting (pivot search is for any non-zero
// entry; there is no rounding in a finite field). The receiver is not
// modified. Returns ErrSingular if no inverse exists.
func (m *Matrix) Invert() (*Matrix, error) {
	if m.Rows != m.Cols {
		panic(fmt.Sprintf("gf256: Invert of non-square %dx%d matrix", m.Rows, m.Cols))
	}
	n := m.Rows
	a := m.Clone()
	inv := Identity(n)
	for col := 0; col < n; col++ {
		// Find a pivot row.
		pivot := -1
		for r := col; r < n; r++ {
			if a.At(r, col) != 0 {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			return nil, ErrSingular
		}
		if pivot != col {
			swapRows(a, pivot, col)
			swapRows(inv, pivot, col)
		}
		// Normalise the pivot row.
		if pv := a.At(col, col); pv != 1 {
			c := Inv(pv)
			MulSlice(c, a.Row(col), a.Row(col))
			MulSlice(c, inv.Row(col), inv.Row(col))
		}
		// Eliminate the column from every other row.
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			if f := a.At(r, col); f != 0 {
				MulAddSlice(f, a.Row(col), a.Row(r))
				MulAddSlice(f, inv.Row(col), inv.Row(r))
			}
		}
	}
	return inv, nil
}

func swapRows(m *Matrix, i, j int) {
	ri, rj := m.Row(i), m.Row(j)
	for k := range ri {
		ri[k], rj[k] = rj[k], ri[k]
	}
}

// SubMatrix returns the matrix formed by the given rows of m (in order).
func (m *Matrix) SubMatrix(rows []int) *Matrix {
	out := NewMatrix(len(rows), m.Cols)
	for i, r := range rows {
		copy(out.Row(i), m.Row(r))
	}
	return out
}
