package gf256

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTablesConsistent(t *testing.T) {
	// exp and log are mutually inverse on the non-zero elements.
	seen := make(map[byte]bool)
	for i := 0; i < 255; i++ {
		v := Exp(i)
		if v == 0 {
			t.Fatalf("Exp(%d) = 0", i)
		}
		if seen[v] {
			t.Fatalf("Exp(%d) = %#x repeats an earlier power; generator not primitive", i, v)
		}
		seen[v] = true
		if Log(v) != i {
			t.Fatalf("Log(Exp(%d)) = %d", i, Log(v))
		}
	}
	if len(seen) != 255 {
		t.Fatalf("powers of alpha cover %d elements, want 255", len(seen))
	}
}

func TestMulMatchesCarrylessReference(t *testing.T) {
	// Reference: schoolbook carry-less multiplication with reduction by Poly.
	ref := func(a, b byte) byte {
		var prod uint16
		for i := 0; i < 8; i++ {
			if b&(1<<i) != 0 {
				prod ^= uint16(a) << i
			}
		}
		for i := 15; i >= 8; i-- {
			if prod&(1<<i) != 0 {
				prod ^= uint16(Poly) << (i - 8)
			}
		}
		return byte(prod)
	}
	for a := 0; a < 256; a++ {
		for b := 0; b < 256; b++ {
			if got, want := Mul(byte(a), byte(b)), ref(byte(a), byte(b)); got != want {
				t.Fatalf("Mul(%#x,%#x) = %#x, want %#x", a, b, got, want)
			}
		}
	}
}

func TestFieldAxiomsQuick(t *testing.T) {
	cfg := &quick.Config{MaxCount: 2000}
	if err := quick.Check(func(a, b, c byte) bool {
		// Commutativity and associativity of both operations.
		if Add(a, b) != Add(b, a) || Mul(a, b) != Mul(b, a) {
			return false
		}
		if Add(Add(a, b), c) != Add(a, Add(b, c)) {
			return false
		}
		if Mul(Mul(a, b), c) != Mul(a, Mul(b, c)) {
			return false
		}
		// Distributivity.
		return Mul(a, Add(b, c)) == Add(Mul(a, b), Mul(a, c))
	}, cfg); err != nil {
		t.Error(err)
	}
	if err := quick.Check(func(a byte) bool {
		// Identities and inverses.
		if Add(a, 0) != a || Mul(a, 1) != a || Add(a, a) != 0 {
			return false
		}
		if a != 0 {
			if Mul(a, Inv(a)) != 1 {
				return false
			}
			if Div(a, a) != 1 {
				return false
			}
		}
		return Mul(a, 0) == 0
	}, cfg); err != nil {
		t.Error(err)
	}
}

func TestDivInverseOfMul(t *testing.T) {
	for a := 0; a < 256; a++ {
		for b := 1; b < 256; b++ {
			p := Mul(byte(a), byte(b))
			if Div(p, byte(b)) != byte(a) {
				t.Fatalf("Div(Mul(%#x,%#x),%#x) != %#x", a, b, b, a)
			}
		}
	}
}

func TestPow(t *testing.T) {
	for a := 0; a < 256; a++ {
		want := byte(1)
		for e := 0; e < 520; e++ {
			if got := Pow(byte(a), e); got != want {
				t.Fatalf("Pow(%#x,%d) = %#x, want %#x", a, e, got, want)
			}
			want = Mul(want, byte(a))
		}
	}
	if Pow(0, 0) != 1 {
		t.Errorf("Pow(0,0) = %d, want 1 (empty product)", Pow(0, 0))
	}
}

func TestPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("Div by zero", func() { Div(3, 0) })
	mustPanic("Inv of zero", func() { Inv(0) })
	mustPanic("Log of zero", func() { Log(0) })
	mustPanic("negative Exp", func() { Exp(-1) })
	mustPanic("MulSlice mismatch", func() { MulSlice(2, make([]byte, 3), make([]byte, 4)) })
	mustPanic("MulAddSlice mismatch", func() { MulAddSlice(2, make([]byte, 3), make([]byte, 4)) })
	mustPanic("DotProduct mismatch", func() { DotProduct(make([]byte, 3), make([]byte, 4)) })
}

func TestSliceKernels(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 100; trial++ {
		n := rng.Intn(300)
		src := make([]byte, n)
		dst := make([]byte, n)
		rng.Read(src)
		rng.Read(dst)
		c := byte(rng.Intn(256))

		wantMul := make([]byte, n)
		wantMulAdd := make([]byte, n)
		for i := range src {
			wantMul[i] = Mul(c, src[i])
			wantMulAdd[i] = dst[i] ^ Mul(c, src[i])
		}

		gotMulAdd := append([]byte(nil), dst...)
		MulAddSlice(c, src, gotMulAdd)
		if !bytes.Equal(gotMulAdd, wantMulAdd) {
			t.Fatalf("MulAddSlice(c=%#x) mismatch", c)
		}

		gotMul := append([]byte(nil), dst...)
		MulSlice(c, src, gotMul)
		if !bytes.Equal(gotMul, wantMul) {
			t.Fatalf("MulSlice(c=%#x) mismatch", c)
		}
	}
}

func TestAddSlice(t *testing.T) {
	a := []byte{1, 2, 3}
	b := []byte{4, 5, 6}
	AddSlice(a, b)
	if !bytes.Equal(b, []byte{5, 7, 5}) {
		t.Errorf("AddSlice = %v", b)
	}
}

func TestDotProduct(t *testing.T) {
	a := []byte{1, 2, 0, 9}
	b := []byte{7, 3, 5, 0}
	want := Mul(1, 7) ^ Mul(2, 3) ^ Mul(0, 5) ^ Mul(9, 0)
	if got := DotProduct(a, b); got != want {
		t.Errorf("DotProduct = %#x, want %#x", got, want)
	}
}

func BenchmarkGFMulAddSliceTable(b *testing.B) {
	src := make([]byte, 1024)
	dst := make([]byte, 1024)
	rand.New(rand.NewSource(2)).Read(src)
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MulAddSlice(0x57, src, dst)
	}
}

func BenchmarkGFMulAddSliceLogExp(b *testing.B) {
	// Ablation: the same kernel through log/exp lookups instead of the
	// 64 KiB product table, to quantify why the table is worth its memory.
	src := make([]byte, 1024)
	dst := make([]byte, 1024)
	rand.New(rand.NewSource(2)).Read(src)
	c := byte(0x57)
	lc := logTbl[c]
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j, s := range src {
			if s != 0 {
				dst[j] ^= expTbl[lc+logTbl[s]]
			}
		}
	}
}
