// Udpmulticast: a live NP transfer over real UDP/IP multicast on the local
// host — one sender and several receivers joined to the same group, all in
// one process. The protocol engines are byte-identical to the ones driven
// by the simulator; only the Env differs.
//
// Run with: go run ./examples/udpmulticast [-group 239.4.5.6:7654]
package main

import (
	"bytes"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"time"

	"rmfec"
)

func main() {
	var (
		group = flag.String("group", "239.4.5.6:7654", "multicast group")
		nRecv = flag.Int("receivers", 3, "number of receivers")
		size  = flag.Int("size", 128<<10, "payload bytes")
	)
	flag.Parse()

	cfg := rmfec.Config{
		Session:   uint32(time.Now().UnixNano()),
		K:         16,
		ShardSize: 1024,
		Delta:     200 * time.Microsecond,
		Ts:        2 * time.Millisecond,
		RetryBase: 50 * time.Millisecond,
	}

	senderConn, err := rmfec.JoinUDP(*group)
	if err != nil {
		log.Fatalf("join (is multicast available on this host?): %v", err)
	}
	defer senderConn.Close()
	sender, err := rmfec.NewSender(senderConn, cfg)
	if err != nil {
		log.Fatal(err)
	}
	senderConn.Serve(sender.HandlePacket)

	msg := make([]byte, *size)
	rand.New(rand.NewSource(1)).Read(msg)

	done := make(chan int, *nRecv)
	conns := make([]*rmfec.UDPConn, 0, *nRecv)
	receivers := make([]*rmfec.Receiver, 0, *nRecv)
	for i := 0; i < *nRecv; i++ {
		conn, err := rmfec.JoinUDP(*group)
		if err != nil {
			log.Fatal(err)
		}
		defer conn.Close()
		recv, err := rmfec.NewReceiver(conn, cfg)
		if err != nil {
			log.Fatal(err)
		}
		idx := i
		recv.OnComplete = func(got []byte) {
			if !bytes.Equal(got, msg) {
				log.Fatalf("receiver %d: corrupted delivery", idx)
			}
			done <- idx
		}
		conn.Serve(recv.HandlePacket)
		conns = append(conns, conn)
		receivers = append(receivers, recv)
	}

	time.Sleep(100 * time.Millisecond) // let IGMP joins settle
	start := time.Now()
	senderConn.Do(func() {
		if err := sender.Send(msg); err != nil {
			log.Fatal(err)
		}
	})
	fmt.Printf("multicasting %d KiB to %d receivers on %s...\n", *size>>10, *nRecv, *group)

	for i := 0; i < *nRecv; i++ {
		select {
		case idx := <-done:
			var st rmfec.ReceiverStats
			conns[idx].Do(func() { st = receivers[idx].Stats() })
			fmt.Printf("receiver %d complete after %v (%d data, %d parity, %d decodes)\n",
				idx, time.Since(start).Round(time.Millisecond),
				st.DataRx, st.ParityRx, st.Decodes)
		case <-time.After(30 * time.Second):
			log.Fatal("timed out; this host may not loop back multicast")
		}
	}
	var st rmfec.SenderStats
	senderConn.Do(func() { st = sender.Stats() })
	fmt.Printf("sender: %d data + %d parity transmissions, %d NAKs served\n",
		st.DataTx, st.ParityTx, st.NakServed)
}
