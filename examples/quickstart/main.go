// Quickstart: the two faces of parity-based loss recovery in ~80 lines.
//
//  1. The Reed-Solomon erasure codec on its own: encode a message into
//     k data + h parity shards, lose any h of them, reconstruct.
//  2. The NP hybrid-ARQ protocol: a reliable multicast file transfer to
//     lossy receivers on the simulated network, with the transmission
//     statistics the paper's evaluation is built on.
//
// Run with: go run ./examples/quickstart
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"
	"time"

	"rmfec"
)

func main() {
	codecDemo()
	protocolDemo()
}

func codecDemo() {
	const k, h = 8, 3
	code, err := rmfec.NewCode(k, h)
	if err != nil {
		log.Fatal(err)
	}
	msg := []byte("parity packets repair different losses at different receivers")
	data, err := rmfec.Split(msg, k)
	if err != nil {
		log.Fatal(err)
	}
	shards := make([][]byte, k+h)
	copy(shards, data)
	parity := make([][]byte, h)
	if err := code.Encode(data, parity); err != nil {
		log.Fatal(err)
	}
	copy(shards[k:], parity)

	// Lose any h shards — here two data packets and one parity.
	shards[1], shards[5], shards[k] = nil, nil, nil
	if err := code.Reconstruct(shards); err != nil {
		log.Fatal(err)
	}
	got, err := rmfec.Join(shards[:k])
	if err != nil || !bytes.Equal(got, msg) {
		log.Fatalf("reconstruction failed: %v", err)
	}
	fmt.Printf("codec: recovered %d lost shards; message intact (%q...)\n", h, got[:24])
}

func protocolDemo() {
	const (
		nReceivers = 10
		lossProb   = 0.05
	)
	rng := rand.New(rand.NewSource(42))
	sched := rmfec.NewScheduler()
	net := rmfec.NewNetwork(sched, rng)
	cfg := rmfec.Config{Session: 1, K: 8, ShardSize: 256}

	senderNode := net.AddNode(rmfec.NodeConfig{Delay: 5 * time.Millisecond})
	sender, err := rmfec.NewSender(senderNode, cfg)
	if err != nil {
		log.Fatal(err)
	}
	senderNode.SetHandler(sender.HandlePacket)

	msg := make([]byte, 64<<10)
	rng.Read(msg)
	completed := 0
	for i := 0; i < nReceivers; i++ {
		node := net.AddNode(rmfec.NodeConfig{
			Delay: 5 * time.Millisecond,
			Loss:  rmfec.NewBernoulli(lossProb, rng),
		})
		recv, err := rmfec.NewReceiver(node, cfg)
		if err != nil {
			log.Fatal(err)
		}
		recv.OnComplete = func(got []byte) {
			if !bytes.Equal(got, msg) {
				log.Fatal("delivered message corrupted")
			}
			completed++
		}
		node.SetHandler(recv.HandlePacket)
	}

	if err := sender.Send(msg); err != nil {
		log.Fatal(err)
	}
	sched.Run()

	st := sender.Stats()
	dataPkts := sender.Groups() * cfg.K
	measured := float64(st.DataTx+st.ParityTx) / float64(dataPkts)
	bound := rmfec.ExpectedTxIntegrated(cfg.K, 0, nReceivers, lossProb)
	fmt.Printf("protocol: %d/%d receivers completed a %d KiB transfer at p=%g\n",
		completed, nReceivers, len(msg)>>10, lossProb)
	fmt.Printf("protocol: %d data + %d parity transmissions -> E[M] = %.3f "+
		"(paper's integrated-FEC bound: %.3f)\n",
		st.DataTx, st.ParityTx, measured, bound)
}
