// Filetransfer: one-to-many reliable distribution compared across the
// paper's three recovery architectures, on the same simulated network.
//
// The same 256 KiB payload is multicast to R lossy receivers with
//
//	(a) N2        — ARQ only, originals retransmitted per NAK,
//	(b) layered   — N2 above a transparent FEC layer (k=7, h=1),
//	(c) NP        — integrated FEC/ARQ with parity retransmission.
//
// The program prints the sender's transmission counts: the bandwidth story
// of the paper's Figs 5/11 on a live protocol stack rather than a formula.
//
// Run with: go run ./examples/filetransfer [-receivers 30] [-p 0.05]
package main

import (
	"bytes"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"time"

	"rmfec"
	"rmfec/internal/core"
	"rmfec/internal/layered"
	"rmfec/internal/simnet"
)

func main() {
	var (
		nRecv = flag.Int("receivers", 30, "number of receivers")
		p     = flag.Float64("p", 0.05, "per-receiver packet loss probability")
		size  = flag.Int("size", 256<<10, "payload bytes")
		seed  = flag.Int64("seed", 7, "random seed")
		trace = flag.Bool("trace", false, "print per-node bandwidth accounting for the NP run")
	)
	flag.Parse()
	traceNP = *trace

	msg := make([]byte, *size)
	rand.New(rand.NewSource(*seed)).Read(msg)

	fmt.Printf("distributing %d KiB to %d receivers at p=%g\n\n", *size>>10, *nRecv, *p)
	fmt.Printf("%-10s %-10s %-10s %-10s %-12s %-10s\n",
		"protocol", "data tx", "parity tx", "total", "E[M]", "naks rx")

	n2 := runN2(msg, *nRecv, *p, *seed)
	lay := runLayered(msg, *nRecv, *p, *seed)
	np := runNP(msg, *nRecv, *p, *seed)

	pkts := (len(msg) + 255) / 256 // 256-byte shards in every setup
	report := func(name string, data, parity, naks int) {
		total := data + parity
		fmt.Printf("%-10s %-10d %-10d %-10d %-12.3f %-10d\n",
			name, data, parity, total, float64(total)/float64(pkts), naks)
	}
	report("N2", n2.DataTx, 0, n2.NakRx)
	report("layered", lay.data, lay.parity, lay.naks)
	report("NP", np.DataTx, np.ParityTx, np.NakRx)

	fmt.Printf("\npaper's models for R=%d, p=%g:  no-FEC E[M]=%.3f   integrated bound E[M]=%.3f\n",
		*nRecv, *p,
		rmfec.ExpectedTxNoFEC(*nRecv, *p),
		rmfec.ExpectedTxIntegrated(8, 0, *nRecv, *p))
}

func buildNet(seed int64) (*simnet.Scheduler, *simnet.Network, *rand.Rand) {
	sched := simnet.NewScheduler()
	sched.MaxEvents = 50_000_000
	rng := rand.New(rand.NewSource(seed))
	return sched, simnet.NewNetwork(sched, rng), rng
}

func verify(deliveries [][]byte, msg []byte) {
	for i, d := range deliveries {
		if !bytes.Equal(d, msg) {
			log.Fatalf("receiver %d: corrupted or incomplete delivery", i)
		}
	}
}

// traceNP enables bandwidth accounting on the NP run.
var traceNP bool

func runNP(msg []byte, r int, p float64, seed int64) core.SenderStats {
	sched, net, rng := buildNet(seed)
	var counts *simnet.CountTracer
	if traceNP {
		counts = simnet.NewCountTracer()
		net.SetTracer(counts)
	}
	cfg := core.Config{Session: 1, K: 8, ShardSize: 256}
	sn := net.AddNode(simnet.NodeConfig{Delay: 5 * time.Millisecond})
	sender, err := core.NewSender(sn, cfg)
	if err != nil {
		log.Fatal(err)
	}
	sn.SetHandler(sender.HandlePacket)
	deliveries := make([][]byte, r)
	for i := 0; i < r; i++ {
		node := net.AddNode(simnet.NodeConfig{
			Delay: 5 * time.Millisecond,
			Loss:  rmfec.NewBernoulli(p, rng),
		})
		rc, err := core.NewReceiver(node, cfg)
		if err != nil {
			log.Fatal(err)
		}
		idx := i
		rc.OnComplete = func(m []byte) { deliveries[idx] = m }
		node.SetHandler(rc.HandlePacket)
	}
	if err := sender.Send(msg); err != nil {
		log.Fatal(err)
	}
	sched.Run()
	verify(deliveries, msg)
	if counts != nil {
		tot := counts.Totals()
		sAcc := counts.Node(0)
		fmt.Printf("\n[trace] NP sender: %d pkts / %d KiB multicast; network-wide: %d deliveries, %d drops (%.1f%% of deliveries+drops)\n",
			sAcc.TxPackets, sAcc.TxBytes>>10, tot.RxPackets, tot.DropPackets,
			100*float64(tot.DropPackets)/float64(tot.RxPackets+tot.DropPackets))
		fmt.Printf("[trace] receiver 1 saw %d pkts / %d KiB, dropped %d\n\n",
			counts.Node(1).RxPackets, counts.Node(1).RxBytes>>10, counts.Node(1).DropPackets)
	}
	return sender.Stats()
}

func runN2(msg []byte, r int, p float64, seed int64) core.SenderStats {
	sched, net, rng := buildNet(seed)
	cfg := core.Config{Session: 1, K: 1, ShardSize: 256}
	sn := net.AddNode(simnet.NodeConfig{Delay: 5 * time.Millisecond})
	sender, err := core.NewSenderN2(sn, cfg)
	if err != nil {
		log.Fatal(err)
	}
	sn.SetHandler(sender.HandlePacket)
	deliveries := make([][]byte, r)
	for i := 0; i < r; i++ {
		node := net.AddNode(simnet.NodeConfig{
			Delay: 5 * time.Millisecond,
			Loss:  rmfec.NewBernoulli(p, rng),
		})
		rc, err := core.NewReceiverN2(node, cfg)
		if err != nil {
			log.Fatal(err)
		}
		idx := i
		rc.OnComplete = func(m []byte) { deliveries[idx] = m }
		node.SetHandler(rc.HandlePacket)
	}
	if err := sender.Send(msg); err != nil {
		log.Fatal(err)
	}
	sched.Run()
	verify(deliveries, msg)
	return sender.Stats()
}

type layeredResult struct{ data, parity, naks int }

func runLayered(msg []byte, r int, p float64, seed int64) layeredResult {
	sched, net, rng := buildNet(seed)
	rm := core.Config{Session: 1, K: 1, ShardSize: 256}
	fec := layered.Config{Session: 900, K: 7, H: 1, ShardSize: 256 + 32}

	sn := net.AddNode(simnet.NodeConfig{Delay: 5 * time.Millisecond})
	sShim, err := layered.New(sn, fec)
	if err != nil {
		log.Fatal(err)
	}
	sn.SetHandler(sShim.HandlePacket)
	sender, err := core.NewSenderN2(sShim, rm)
	if err != nil {
		log.Fatal(err)
	}
	sShim.SetUpper(sender.HandlePacket)

	deliveries := make([][]byte, r)
	for i := 0; i < r; i++ {
		node := net.AddNode(simnet.NodeConfig{
			Delay: 5 * time.Millisecond,
			Loss:  rmfec.NewBernoulli(p, rng),
		})
		shim, err := layered.New(node, fec)
		if err != nil {
			log.Fatal(err)
		}
		node.SetHandler(shim.HandlePacket)
		rc, err := core.NewReceiverN2(shim, rm)
		if err != nil {
			log.Fatal(err)
		}
		idx := i
		rc.OnComplete = func(m []byte) { deliveries[idx] = m }
		shim.SetUpper(rc.HandlePacket)
	}
	if err := sender.Send(msg); err != nil {
		log.Fatal(err)
	}
	sched.Run()
	verify(deliveries, msg)
	return layeredResult{
		data:   sShim.Stats().WrappedTx,
		parity: sShim.Stats().ParityTx,
		naks:   sender.Stats().NakRx,
	}
}
