// Lossmodels: side-by-side exploration of the paper's loss models and of
// how each recovery scheme responds to them. For a fixed per-receiver loss
// probability it prints E[M] — the expected transmissions per packet —
// under
//
//   - independent loss (closed forms AND Monte-Carlo, which must agree),
//   - shared loss on a full binary tree (Section 4.1),
//   - bursty loss from the two-state Markov chain (Section 4.2),
//
// plus the burst-length census of Fig. 14.
//
// Run with: go run ./examples/lossmodels
package main

import (
	"fmt"
	"math/rand"

	"rmfec"
	"rmfec/internal/loss"
	"rmfec/internal/model"
	"rmfec/internal/sim"
)

const (
	p     = 0.01
	k     = 7
	depth = 10 // FBT height; R = 1024
	r     = 1 << depth
)

func main() {
	rng := rand.New(rand.NewSource(1997))
	tm := sim.PaperTiming
	samples := 600

	fmt.Printf("E[M] for R=%d receivers, p=%g, k=%d\n\n", r, p, k)
	fmt.Printf("%-22s %-12s %-12s %-12s\n", "loss model", "no FEC", "layered 7+1", "integrated")

	// Independent loss: closed forms.
	fmt.Printf("%-22s %-12.3f %-12.3f %-12.3f\n", "independent (model)",
		model.ExpectedTxNoFEC(r, p),
		model.ExpectedTxLayered(k, 1, r, p),
		model.ExpectedTxIntegrated(k, 0, r, p))

	// Independent loss: simulation; must agree with the models above.
	indep := func() loss.Population {
		return loss.NewIndependentBernoulli(r, p, rand.New(rand.NewSource(rng.Int63())))
	}
	fmt.Printf("%-22s %-12.3f %-12.3f %-12.3f\n", "independent (sim)",
		sim.NoFEC(indep(), tm, samples).Mean,
		sim.Layered(indep(), k, 1, tm, samples).Mean,
		sim.Integrated2(indep(), k, tm, samples).Mean)

	// Shared loss on the full binary tree.
	fbt := func() loss.Population {
		return rmfec.NewFBT(depth, p, rand.New(rand.NewSource(rng.Int63())))
	}
	fmt.Printf("%-22s %-12.3f %-12.3f %-12.3f\n", "FBT shared (sim)",
		sim.NoFEC(fbt(), tm, samples).Mean,
		sim.Layered(fbt(), k, 1, tm, samples).Mean,
		sim.Integrated2(fbt(), k, tm, samples).Mean)

	// Burst loss (b=2, 25 pkt/s).
	burst := func() loss.Population {
		return loss.NewIndependentMarkov(r, p, 2, 25, rand.New(rand.NewSource(rng.Int63())))
	}
	fmt.Printf("%-22s %-12.3f %-12.3f %-12.3f\n", "burst b=2 (sim)",
		sim.NoFEC(burst(), tm, samples).Mean,
		sim.Layered(burst(), k, 1, tm, samples).Mean,
		sim.Integrated2(burst(), k, tm, samples).Mean)

	fmt.Println("\nobservations (cf. paper Sections 4.1-4.2):")
	fmt.Println("  - shared loss lowers every curve: one tree loss = many receiver losses")
	fmt.Println("  - burst loss hurts layered FEC most: a burst overwhelms a small block")

	// Fig 14's census.
	fmt.Printf("\nburst-length census at one receiver (%d packets, p=%g):\n", 1_000_000, p)
	hist := sim.BurstCensus(loss.NewMarkov(p, 2, 25, rng), 0.040, 1_000_000)
	fmt.Printf("  mean burst length %.2f (configured 2.0)\n", hist.MeanLength())
	for _, l := range hist.Lengths() {
		if l > 8 {
			fmt.Printf("  >8: (tail)\n")
			break
		}
		fmt.Printf("  %2d consecutive: %6d occurrences\n", l, hist[l])
	}
}
