// Adaptive: the redundancy-policy spectrum of the NP sender on one lossy
// network. The same transfer runs five ways:
//
//	reactive     — parities only after NAKs (the paper's protocol NP),
//	proactive    — a fixed parities ride with every group (hybrid ARQ type I),
//	carousel     — proactive parities and NO polls (the paper's "integrated
//	               FEC 1": receivers just stop listening once they can decode),
//	adaptive     — the sender learns the loss level from NAKs and front-loads
//	               roughly the right redundancy by itself (a-only EWMA),
//	adaptive-fec — the full control plane (internal/adapt): an online loss
//	               estimator and burst detector retune (k, h, a) between
//	               transmission groups, renegotiated on the wire (v2).
//
// The table shows the classic trade: feedback rounds versus up-front
// redundancy, at nearly constant total bandwidth. The trailing section
// shows the adaptive-fec controller's (k, h) walk down the loss ladder.
// Two things to know when reading its row: the controller starts at the
// ladder's leanest rung, so a short transfer pays a visible cold start
// (the early wide groups under-provision and re-group their residue)
// that a long transfer amortizes away; and p-hat estimates the *worst*
// receiver's loss — the quantity parities must cover — which for 20
// independent receivers sits well above the per-receiver p.
//
// Run with: go run ./examples/adaptive [-p 0.08] [-receivers 20]
package main

import (
	"bytes"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"time"

	"rmfec"
	"rmfec/internal/adapt"
	"rmfec/internal/simnet"
)

func main() {
	var (
		nRecv = flag.Int("receivers", 20, "number of receivers")
		p     = flag.Float64("p", 0.08, "per-receiver packet loss probability")
		size  = flag.Int("size", 128<<10, "payload bytes")
		seed  = flag.Int64("seed", 11, "random seed")
	)
	flag.Parse()

	msg := make([]byte, *size)
	rand.New(rand.NewSource(*seed)).Read(msg)

	type mode struct {
		name string
		mut  func(*rmfec.Config)
	}
	modes := []mode{
		{"reactive", func(c *rmfec.Config) {}},
		{"proactive a=2", func(c *rmfec.Config) { c.Proactive = 2 }},
		{"carousel a=3", func(c *rmfec.Config) { c.Carousel = true; c.Proactive = 3 }},
		{"adaptive", func(c *rmfec.Config) { c.Adaptive = true }},
		{"adaptive-fec", adaptiveFEC},
	}

	fmt.Printf("NP redundancy policies: %d KiB to %d receivers at p=%g\n\n", *size>>10, *nRecv, *p)
	fmt.Printf("%-15s %-10s %-10s %-10s %-12s %-12s %-14s\n",
		"mode", "data tx", "parity tx", "E[M]", "polls", "nak rounds", "mean latency")

	var afSender *rmfec.Sender
	for _, m := range modes {
		sender, lat := run(t(m.mut), msg, *nRecv, *p, *seed)
		st := sender.Stats()
		total := st.DataTx + st.ParityTx
		fmt.Printf("%-15s %-10d %-10d %-10.3f %-12d %-12d %-14v\n",
			m.name, st.DataTx, st.ParityTx,
			float64(total)/float64(sender.SourcePackets()),
			st.PollTx, st.NakServed, lat.Round(100*time.Microsecond))
		if m.name == "adaptive-fec" {
			afSender = sender
		}
	}
	fmt.Printf("\nintegrated-FEC bound for this population: E[M] = %.3f\n",
		rmfec.ExpectedTxIntegrated(8, 0, *nRecv, *p))

	// The (k, h) retuning walk: where the control plane renegotiated the
	// codec parameters mid-transfer, and what it believed at the end.
	ctl := afSender.Adapt()
	pt := ctl.Params()
	fmt.Printf("\nadaptive-fec control plane (wire v2, ladder of %s):\n", "internal/adapt")
	fmt.Printf("  final: p-hat = %.4f, rung %d (k=%d h=%d a=%d), %d retunes, bursty=%v\n",
		ctl.PHat(), ctl.Rung(), pt.K, pt.H, pt.A, ctl.Retunes(), ctl.Bursty())
	fmt.Printf("  (k,h) walk:")
	lastK, lastH := 0, 0
	for _, g := range afSender.GroupTrace() {
		if g.K != lastK || g.H != lastH {
			fmt.Printf(" group %d: (%d,%d)", g.Index, g.K, g.H)
			lastK, lastH = g.K, g.H
		}
	}
	fmt.Println()
}

// adaptiveFEC switches cfg onto the full control plane. The estimator
// window and NAK timing are tightened the same way the scenario tests do:
// deficits must arrive within ObserveLag group-cuts of their group, so the
// NAK slot backoff (slot*Ts, slot <= MaxNakSlots) has to fit the window.
func adaptiveFEC(c *rmfec.Config) {
	ac := adapt.DefaultConfig()
	ac.Window = 12
	ac.MinDwell = 4
	ac.MinBurstObs = 6
	ac.ProbeEvery = 4
	c.K, c.Proactive = 0, 0
	c.AdaptiveFEC = true
	c.Adapt = ac
	c.Ts = 2 * time.Millisecond
	c.MaxNakSlots = 4
	c.ObserveLag = 6
}

func t(mut func(*rmfec.Config)) rmfec.Config {
	cfg := rmfec.Config{Session: 1, K: 8, ShardSize: 256}
	mut(&cfg)
	return cfg
}

func run(cfg rmfec.Config, msg []byte, r int, p float64, seed int64) (*rmfec.Sender, time.Duration) {
	sched := rmfec.NewScheduler()
	sched.MaxEvents = 50_000_000
	rng := rand.New(rand.NewSource(seed))
	net := rmfec.NewNetwork(sched, rng)

	sn := net.AddNode(simnet.NodeConfig{Delay: 3 * time.Millisecond})
	sender, err := rmfec.NewSender(sn, cfg)
	if err != nil {
		log.Fatal(err)
	}
	sn.SetHandler(sender.HandlePacket)

	deliveries := make([][]byte, r)
	receivers := make([]*rmfec.Receiver, r)
	for i := 0; i < r; i++ {
		node := net.AddNode(simnet.NodeConfig{
			Delay: 3 * time.Millisecond,
			Loss:  rmfec.NewBernoulli(p, rng),
		})
		rc, err := rmfec.NewReceiver(node, cfg)
		if err != nil {
			log.Fatal(err)
		}
		idx := i
		rc.OnComplete = func(m []byte) { deliveries[idx] = m }
		node.SetHandler(rc.HandlePacket)
		receivers[i] = rc
	}
	if err := sender.Send(msg); err != nil {
		log.Fatal(err)
	}
	sched.Run()
	for i, d := range deliveries {
		if !bytes.Equal(d, msg) {
			log.Fatalf("receiver %d corrupted/incomplete", i)
		}
	}
	var latSum time.Duration
	for _, rc := range receivers {
		latSum += rc.Stats().MeanLatency()
	}
	return sender, latSum / time.Duration(r)
}
