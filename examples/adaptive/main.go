// Adaptive: the redundancy-policy spectrum of the NP sender on one lossy
// network. The same transfer runs four ways:
//
//	reactive   — parities only after NAKs (the paper's protocol NP),
//	proactive  — a fixed parities ride with every group (hybrid ARQ type I),
//	carousel   — proactive parities and NO polls (the paper's "integrated
//	             FEC 1": receivers just stop listening once they can decode),
//	adaptive   — the sender learns the loss level from NAKs and front-loads
//	             roughly the right redundancy by itself.
//
// The table shows the classic trade: feedback rounds versus up-front
// redundancy, at nearly constant total bandwidth.
//
// Run with: go run ./examples/adaptive [-p 0.08] [-receivers 20]
package main

import (
	"bytes"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"time"

	"rmfec"
	"rmfec/internal/simnet"
)

func main() {
	var (
		nRecv = flag.Int("receivers", 20, "number of receivers")
		p     = flag.Float64("p", 0.08, "per-receiver packet loss probability")
		size  = flag.Int("size", 128<<10, "payload bytes")
		seed  = flag.Int64("seed", 11, "random seed")
	)
	flag.Parse()

	msg := make([]byte, *size)
	rand.New(rand.NewSource(*seed)).Read(msg)

	type mode struct {
		name string
		mut  func(*rmfec.Config)
	}
	modes := []mode{
		{"reactive", func(c *rmfec.Config) {}},
		{"proactive a=2", func(c *rmfec.Config) { c.Proactive = 2 }},
		{"carousel a=3", func(c *rmfec.Config) { c.Carousel = true; c.Proactive = 3 }},
		{"adaptive", func(c *rmfec.Config) { c.Adaptive = true }},
	}

	fmt.Printf("NP redundancy policies: %d KiB to %d receivers at p=%g\n\n", *size>>10, *nRecv, *p)
	fmt.Printf("%-15s %-10s %-10s %-10s %-12s %-12s %-14s\n",
		"mode", "data tx", "parity tx", "E[M]", "polls", "nak rounds", "mean latency")

	for _, m := range modes {
		st, groups, lat := run(t(m.mut), msg, *nRecv, *p, *seed)
		total := st.DataTx + st.ParityTx
		fmt.Printf("%-15s %-10d %-10d %-10.3f %-12d %-12d %-14v\n",
			m.name, st.DataTx, st.ParityTx,
			float64(total)/float64(groups*8), st.PollTx, st.NakServed, lat.Round(100*time.Microsecond))
	}
	fmt.Printf("\nintegrated-FEC bound for this population: E[M] = %.3f\n",
		rmfec.ExpectedTxIntegrated(8, 0, *nRecv, *p))
}

func t(mut func(*rmfec.Config)) rmfec.Config {
	cfg := rmfec.Config{Session: 1, K: 8, ShardSize: 256}
	mut(&cfg)
	return cfg
}

func run(cfg rmfec.Config, msg []byte, r int, p float64, seed int64) (rmfec.SenderStats, int, time.Duration) {
	sched := rmfec.NewScheduler()
	sched.MaxEvents = 50_000_000
	rng := rand.New(rand.NewSource(seed))
	net := rmfec.NewNetwork(sched, rng)

	sn := net.AddNode(simnet.NodeConfig{Delay: 3 * time.Millisecond})
	sender, err := rmfec.NewSender(sn, cfg)
	if err != nil {
		log.Fatal(err)
	}
	sn.SetHandler(sender.HandlePacket)

	deliveries := make([][]byte, r)
	receivers := make([]*rmfec.Receiver, r)
	for i := 0; i < r; i++ {
		node := net.AddNode(simnet.NodeConfig{
			Delay: 3 * time.Millisecond,
			Loss:  rmfec.NewBernoulli(p, rng),
		})
		rc, err := rmfec.NewReceiver(node, cfg)
		if err != nil {
			log.Fatal(err)
		}
		idx := i
		rc.OnComplete = func(m []byte) { deliveries[idx] = m }
		node.SetHandler(rc.HandlePacket)
		receivers[i] = rc
	}
	if err := sender.Send(msg); err != nil {
		log.Fatal(err)
	}
	sched.Run()
	for i, d := range deliveries {
		if !bytes.Equal(d, msg) {
			log.Fatalf("receiver %d corrupted/incomplete", i)
		}
	}
	var latSum time.Duration
	for _, rc := range receivers {
		latSum += rc.Stats().MeanLatency()
	}
	return sender.Stats(), sender.Groups(), latSum / time.Duration(r)
}
