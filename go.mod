module rmfec

go 1.22
